package ether

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testFlow() Flow {
	return Flow{
		SrcMAC: MAC{0x02, 0, 0, 0, 0, 1}, DstMAC: MAC{0x02, 0, 0, 0, 0, 2},
		SrcIP: IP{10, 0, 0, 1}, DstIP: IP{10, 0, 0, 2},
		SrcPort: 40000, DstPort: 8080,
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	s := Segment{Flow: testFlow(), Seq: 1000, Ack: 555, Flags: FlagACK | FlagPSH,
		Payload: []byte("object data over tcp")}
	frame := s.Marshal()
	got, err := Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flow != s.Flow || got.Seq != s.Seq || got.Ack != s.Ack || got.Flags != s.Flags {
		t.Fatalf("headers: %+v", got)
	}
	if !bytes.Equal(got.Payload, s.Payload) {
		t.Fatalf("payload: %q", got.Payload)
	}
}

func TestParseDetectsIPCorruption(t *testing.T) {
	frame := (&Segment{Flow: testFlow(), Payload: []byte("x")}).Marshal()
	frame[EthHeaderLen+12] ^= 0xFF // flip a source IP byte
	if _, err := Parse(frame); err == nil {
		t.Fatal("corrupted IP header accepted")
	}
}

func TestParseDetectsPayloadCorruption(t *testing.T) {
	frame := (&Segment{Flow: testFlow(), Payload: []byte("checksummed")}).Marshal()
	frame[len(frame)-1] ^= 0x01
	if _, err := Parse(frame); err == nil {
		t.Fatal("corrupted payload accepted")
	}
}

func TestParseShortFrame(t *testing.T) {
	if _, err := Parse(make([]byte, 20)); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestParseWrongEthertype(t *testing.T) {
	frame := (&Segment{Flow: testFlow(), Payload: []byte("x")}).Marshal()
	frame[12], frame[13] = 0x08, 0x06 // ARP
	if _, err := Parse(frame); err == nil {
		t.Fatal("non-IPv4 frame accepted")
	}
}

func TestSegmentizeBoundaries(t *testing.T) {
	flow := testFlow()
	cases := []struct {
		payload int
		want    int
	}{
		{0, 1}, {1, 1}, {MSS, 1}, {MSS + 1, 2}, {3 * MSS, 3}, {3*MSS + 7, 4},
	}
	for _, c := range cases {
		segs := Segmentize(flow, 0, make([]byte, c.payload), MSS)
		if len(segs) != c.want {
			t.Fatalf("payload %d: %d segments, want %d", c.payload, len(segs), c.want)
		}
		if segs[len(segs)-1].Flags&FlagPSH == 0 {
			t.Fatalf("payload %d: last segment missing PSH", c.payload)
		}
	}
}

func TestSegmentizeSequenceNumbers(t *testing.T) {
	payload := make([]byte, 2*MSS+100)
	for i := range payload {
		payload[i] = byte(i)
	}
	segs := Segmentize(testFlow(), 7777, payload, MSS)
	want := uint32(7777)
	var rebuilt []byte
	for _, s := range segs {
		if s.Seq != want {
			t.Fatalf("seq = %d, want %d", s.Seq, want)
		}
		want += uint32(len(s.Payload))
		rebuilt = append(rebuilt, s.Payload...)
	}
	if !bytes.Equal(rebuilt, payload) {
		t.Fatal("reassembled payload differs")
	}
}

func TestWireLen(t *testing.T) {
	s := Segment{Flow: testFlow(), Payload: make([]byte, 100)}
	if s.WireLen() != HeadersLen+100+WireOverhead {
		t.Fatalf("wire len = %d", s.WireLen())
	}
}

func TestEffectiveBandwidthFraction(t *testing.T) {
	// A full MSS segment's payload efficiency explains the ~9.4 Gbps
	// effective rate the paper footnotes for the 10-GbE NIC.
	s := Segment{Flow: testFlow(), Payload: make([]byte, MSS)}
	eff := float64(MSS) / float64(s.WireLen())
	if eff < 0.93 || eff > 0.96 {
		t.Fatalf("payload efficiency %.3f, want ~0.949", eff)
	}
}

func TestFlowReverseAndTuple(t *testing.T) {
	f := testFlow()
	r := f.Reverse()
	if r.SrcPort != f.DstPort || r.DstIP != f.SrcIP || r.SrcMAC != f.DstMAC {
		t.Fatalf("reverse = %+v", r)
	}
	if r.Reverse() != f {
		t.Fatal("double reverse not identity")
	}
	tu := f.Tuple()
	if tu.SrcIP != f.SrcIP || tu.DstPort != f.DstPort {
		t.Fatalf("tuple = %+v", tu)
	}
}

func TestIPString(t *testing.T) {
	if got := (IP{192, 168, 1, 9}).String(); got != "192.168.1.9" {
		t.Fatalf("String = %q", got)
	}
}

// Property: marshal/parse is the identity for arbitrary payloads and
// header fields.
func TestRoundTripProperty(t *testing.T) {
	f := func(seq, ack uint32, payload []byte, sport, dport uint16) bool {
		if len(payload) > MSS {
			payload = payload[:MSS]
		}
		flow := testFlow()
		flow.SrcPort, flow.DstPort = sport, dport
		s := Segment{Flow: flow, Seq: seq, Ack: ack, Flags: FlagACK, Payload: payload}
		got, err := Parse(s.Marshal())
		return err == nil && got.Seq == seq && got.Ack == ack &&
			got.Flow == flow && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-bit corruption anywhere in the frame is
// detected by a checksum or header validation failure, except within
// the Ethernet MAC fields (which carry no checksum, as in real
// Ethernet before the FCS).
func TestCorruptionDetectionProperty(t *testing.T) {
	f := func(pos uint16, bit uint8, payload []byte) bool {
		if len(payload) == 0 || len(payload) > 512 {
			return true
		}
		s := Segment{Flow: testFlow(), Seq: 1, Flags: FlagACK, Payload: payload}
		frame := s.Marshal()
		i := int(pos) % len(frame)
		if i < EthHeaderLen {
			return true // MAC fields: protected by FCS, not modelled
		}
		frame[i] ^= 1 << (bit % 8)
		_, err := Parse(frame)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: segmentation covers the payload exactly once, in order,
// with every non-final segment of full MSS size.
func TestSegmentizeCoverageProperty(t *testing.T) {
	f := func(n uint16, mssRaw uint8) bool {
		mss := int(mssRaw)%MSS + 1
		payload := make([]byte, int(n)%8192)
		for i := range payload {
			payload[i] = byte(i * 13)
		}
		segs := Segmentize(testFlow(), 0, payload, mss)
		var rebuilt []byte
		for i, s := range segs {
			if i < len(segs)-1 && len(s.Payload) != mss {
				return false
			}
			rebuilt = append(rebuilt, s.Payload...)
		}
		return bytes.Equal(rebuilt, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
