package ether

import (
	"fmt"
	"testing"
)

// TestFlowStateTransitions drives every edge of the per-flow phase
// machine through scripted burst sequences and checks the phase after
// each observation. The machine is pure, so the table pins the full
// transition relation (DESIGN.md §13).
func TestFlowStateTransitions(t *testing.T) {
	type step struct {
		class BurstClass
		want  FlowPhase
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"idle-ramps-on-bulk", []step{
			{BurstBulk, FlowRamp},
		}},
		{"ramp-promotes-after-two", []step{
			{BurstBulk, FlowRamp},
			{BurstBulk, FlowSteady},
		}},
		{"steady-stays-steady", []step{
			{BurstBulk, FlowRamp},
			{BurstBulk, FlowSteady},
			{BurstBulk, FlowSteady},
			{BurstBulk, FlowSteady},
		}},
		{"short-bypasses-without-reset", []step{
			{BurstBulk, FlowRamp},
			{BurstShort, FlowRamp}, // keep-alive must not reset the ramp
			{BurstBulk, FlowSteady},
		}},
		{"short-bypasses-in-steady", []step{
			{BurstBulk, FlowRamp},
			{BurstBulk, FlowSteady},
			{BurstShort, FlowSteady},
			{BurstBulk, FlowSteady},
		}},
		{"short-alone-stays-idle", []step{
			{BurstShort, FlowIdle},
			{BurstShort, FlowIdle},
		}},
		{"setup-resets-to-idle", []step{
			{BurstBulk, FlowRamp},
			{BurstBulk, FlowSteady},
			{BurstSetup, FlowIdle},
			{BurstBulk, FlowRamp}, // must re-earn steady from scratch
			{BurstBulk, FlowSteady},
		}},
		{"teardown-drains", []step{
			{BurstBulk, FlowRamp},
			{BurstBulk, FlowSteady},
			{BurstTeardown, FlowDrain},
		}},
		{"drain-reramps-on-bulk", []step{
			{BurstTeardown, FlowDrain},
			{BurstBulk, FlowRamp},
			{BurstBulk, FlowSteady},
		}},
		{"teardown-from-ramp", []step{
			{BurstBulk, FlowRamp},
			{BurstTeardown, FlowDrain},
			{BurstShort, FlowDrain},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s FlowState
			if s.Phase() != FlowIdle {
				t.Fatalf("zero value phase = %v, want idle", s.Phase())
			}
			for i, st := range tc.steps {
				got := s.Observe(st.class)
				if got != st.want {
					t.Fatalf("step %d (%v): phase = %v, want %v", i, st.class, got, st.want)
				}
				if s.Eligible() != (st.want == FlowSteady) {
					t.Fatalf("step %d: Eligible() = %v in phase %v", i, s.Eligible(), st.want)
				}
			}
		})
	}
}

// TestFlowStateDemote pins the fault-triggered demotion: from every
// phase, Demote drops to idle and the flow must re-earn steady state
// with a full ramp.
func TestFlowStateDemote(t *testing.T) {
	setups := map[string]func(*FlowState){
		"idle":   func(s *FlowState) {},
		"ramp":   func(s *FlowState) { s.Observe(BurstBulk) },
		"steady": func(s *FlowState) { s.Observe(BurstBulk); s.Observe(BurstBulk) },
		"drain":  func(s *FlowState) { s.Observe(BurstTeardown) },
	}
	for name, setup := range setups {
		t.Run(name, func(t *testing.T) {
			var s FlowState
			setup(&s)
			s.Demote()
			if s.Phase() != FlowIdle || s.Eligible() {
				t.Fatalf("after Demote from %s: phase = %v", name, s.Phase())
			}
			// One bulk burst is not enough to re-promote: the ramp count
			// must have been reset, not just the phase.
			if got := s.Observe(BurstBulk); got != FlowRamp {
				t.Fatalf("first bulk after Demote: phase = %v, want ramp", got)
			}
			if got := s.Observe(BurstBulk); got != FlowSteady {
				t.Fatalf("second bulk after Demote: phase = %v, want steady", got)
			}
		})
	}
}

// TestClassifySegments pins the burst classifier over the crossover
// boundaries: full-size runs, tails at the short-frame threshold, and
// control flags anywhere in the burst.
func TestClassifySegments(t *testing.T) {
	seg := func(n int, flags uint8) Segment {
		return Segment{Flags: flags | FlagACK, Payload: make([]byte, n)}
	}
	cases := []struct {
		name string
		segs []Segment
		want BurstClass
	}{
		{"empty", nil, BurstShort},
		{"single-full", []Segment{seg(MSS, 0)}, BurstBulk},
		{"single-at-threshold", []Segment{seg(ShortFrameBytes, 0)}, BurstBulk},
		{"single-below-threshold", []Segment{seg(ShortFrameBytes-1, 0)}, BurstShort},
		{"bare-ack", []Segment{seg(0, 0)}, BurstShort},
		{"bulk-run", []Segment{seg(MSS, 0), seg(MSS, 0), seg(MSS, 0)}, BurstBulk},
		{"bulk-with-tail", []Segment{seg(MSS, 0), seg(MSS, 0), seg(512, 0)}, BurstBulk},
		{"bulk-with-short-tail", []Segment{seg(MSS, 0), seg(100, 0)}, BurstShort},
		{"undersized-middle", []Segment{seg(MSS, 0), seg(1000, 0), seg(MSS, 0)}, BurstShort},
		{"syn-first", []Segment{seg(0, FlagSYN)}, BurstSetup},
		{"syn-inside-bulk", []Segment{seg(MSS, 0), seg(MSS, FlagSYN)}, BurstSetup},
		{"fin-last", []Segment{seg(MSS, 0), seg(MSS, FlagFIN)}, BurstTeardown},
		{"rst", []Segment{seg(0, FlagRST)}, BurstTeardown},
		{"syn-beats-fin", []Segment{seg(0, FlagSYN), seg(0, FlagFIN)}, BurstSetup},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ClassifySegments(tc.segs); got != tc.want {
				t.Fatalf("ClassifySegments = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestFlowPhaseStrings keeps the diagnostic names stable (they appear
// in test failure messages and trace output).
func TestFlowPhaseStrings(t *testing.T) {
	for p, want := range map[FlowPhase]string{
		FlowIdle: "idle", FlowRamp: "ramp", FlowSteady: "steady", FlowDrain: "drain",
		FlowPhase(99): "invalid",
	} {
		if got := fmt.Sprint(p); got != want {
			t.Fatalf("FlowPhase(%d).String() = %q, want %q", int(p), got, want)
		}
	}
	for c, want := range map[BurstClass]string{
		BurstBulk: "bulk", BurstShort: "short", BurstSetup: "setup", BurstTeardown: "teardown",
		BurstClass(99): "invalid",
	} {
		if got := fmt.Sprint(c); got != want {
			t.Fatalf("BurstClass(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}
