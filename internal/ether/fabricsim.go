package ether

import (
	"fmt"

	"dcsctrl/internal/sim"
)

// FabricSim is the rack fabric's own sequential discrete-event engine:
// per-directed-link busy clocks and a frame-hop event heap, advanced by
// the shard coordinator between execution windows. It runs on one
// goroutine, so contention resolution (which frame wins a switch output
// port) is decided in a single deterministic order no matter how the
// nodes are sharded across domains — the determinism merge point of
// DESIGN.md §14.
//
// The hop model per switch: a frame arriving at time T is ready to
// contend for its output port at T + FwdDelay, waits for the port's
// busy clock, occupies it for the frame's serialization time at the
// link rate, and propagates one link latency to the next hop. The
// injecting NIC has already serialized the frame onto its access link
// (its txBW server), so the first hop charges only propagation.
type FabricSim struct {
	topo *Topology

	heap []fabEvent
	seq  uint64
	now  sim.Time   // time of the last processed event (sanity floor)
	busy []sim.Time // per directed output port: busy-until

	frames    int64 // frames delivered
	wireBytes int64 // wire bytes delivered
	drops     int64 // unroutable frames
}

// Frame hop stages. Events are stamped at the instant the frame is
// ready to contend for the stage's output port (arrival + FwdDelay),
// except delivery events, which are stamped at node arrival.
const (
	hopSrcToR = iota // contend at the source ToR
	hopSpine         // contend at the spine
	hopDstToR        // contend at the destination ToR
	hopDeliver
)

type fabEvent struct {
	at      sim.Time
	seq     uint64
	stage   uint8
	src     int32
	dst     int32
	wireLen int32
	frame   []byte
}

// NewFabricSim builds the engine for a topology.
func NewFabricSim(t *Topology) *FabricSim {
	s := t.Spec()
	tors := t.ToRs()
	// Directed output ports: [0,Nodes) ToR→node, then ToR→spine, then
	// spine→ToR.
	ports := s.Nodes + tors*s.Spines + s.Spines*tors
	return &FabricSim{topo: t, busy: make([]sim.Time, ports)}
}

// Inject enters one wire frame into the fabric at time at (the instant
// its last bit left the source NIC). The destination is read from the
// frame's IPv4 header, so routing needs no side channel; frames
// addressed outside the rack are dropped and counted.
func (f *FabricSim) Inject(src int, at sim.Time, frame []byte, wireLen int) {
	if len(frame) < EthHeaderLen+IPv4HeaderLen {
		f.drops++
		return
	}
	var dstIP IP
	copy(dstIP[:], frame[EthHeaderLen+16:EthHeaderLen+20])
	dst, ok := f.topo.NodeOfIP(dstIP)
	if !ok {
		f.drops++
		return
	}
	spec := f.topo.Spec()
	first := at + spec.NodeLinkLat + spec.FwdDelay
	if first < f.now {
		panic(fmt.Sprintf("ether: fabric injection at %v creates event at %v before advanced time %v (lookahead violation)",
			at, first, f.now))
	}
	f.push(fabEvent{at: first, stage: hopSrcToR,
		src: int32(src), dst: int32(dst), wireLen: int32(wireLen), frame: frame})
}

// NextTime reports the deadline of the earliest pending fabric event.
func (f *FabricSim) NextTime() (sim.Time, bool) {
	if len(f.heap) == 0 {
		return 0, false
	}
	return f.heap[0].at, true
}

// AdvanceTo processes every fabric event with deadline ≤ t in (at, seq)
// order, calling deliver for each frame that reaches its destination
// node by t. Later arrivals stay queued for a later window.
func (f *FabricSim) AdvanceTo(t sim.Time, deliver func(dst int, at sim.Time, frame []byte)) {
	spec := f.topo.Spec()
	spines, tors, nodes := spec.Spines, f.topo.ToRs(), spec.Nodes
	for len(f.heap) > 0 && f.heap[0].at <= t {
		ev := f.pop()
		f.now = ev.at
		if ev.stage == hopDeliver {
			f.frames++
			f.wireBytes += int64(ev.wireLen)
			deliver(int(ev.dst), ev.at, ev.frame)
			continue
		}
		src, dst := int(ev.src), int(ev.dst)
		sTor, dTor := f.topo.ToROf(src), f.topo.ToROf(dst)
		var port int
		var bps float64
		var next fabEvent
		switch {
		case ev.stage == hopSrcToR && sTor == dTor:
			// One-hop route: the source ToR egresses straight to the node.
			port, bps = dst, spec.NodeBps
			next = fabEvent{stage: hopDeliver}
		case ev.stage == hopSrcToR:
			sp := f.topo.SpineFor(src, dst)
			port, bps = nodes+sTor*spines+sp, spec.SpineBps
			next = fabEvent{stage: hopSpine}
		case ev.stage == hopSpine:
			sp := f.topo.SpineFor(src, dst)
			port, bps = nodes+tors*spines+sp*tors+dTor, spec.SpineBps
			next = fabEvent{stage: hopDstToR}
		default: // hopDstToR
			port, bps = dst, spec.NodeBps
			next = fabEvent{stage: hopDeliver}
		}
		start := ev.at
		if f.busy[port] > start {
			start = f.busy[port]
		}
		ser := sim.BpsToTime(int(ev.wireLen), bps)
		f.busy[port] = start + ser
		next.src, next.dst, next.wireLen, next.frame = ev.src, ev.dst, ev.wireLen, ev.frame
		if next.stage == hopDeliver {
			next.at = start + ser + spec.NodeLinkLat
		} else {
			next.at = start + ser + spec.SpineLinkLat + spec.FwdDelay
		}
		f.push(next)
	}
}

// Stats returns delivered frames, delivered wire bytes, and unroutable
// drops.
func (f *FabricSim) Stats() (frames, wireBytes, drops int64) {
	return f.frames, f.wireBytes, f.drops
}

// Pending reports whether any frame is still in flight in the fabric.
func (f *FabricSim) Pending() bool { return len(f.heap) > 0 }

// push inserts an event, stamping its tie-break sequence number.
func (f *FabricSim) push(ev fabEvent) {
	f.seq++
	ev.seq = f.seq
	f.heap = append(f.heap, ev)
	i := len(f.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !f.less(i, parent) {
			break
		}
		f.heap[i], f.heap[parent] = f.heap[parent], f.heap[i]
		i = parent
	}
}

// pop removes and returns the earliest event.
func (f *FabricSim) pop() fabEvent {
	top := f.heap[0]
	last := len(f.heap) - 1
	f.heap[0] = f.heap[last]
	f.heap[last] = fabEvent{} // drop the frame reference for GC
	f.heap = f.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(f.heap) && f.less(l, small) {
			small = l
		}
		if r < len(f.heap) && f.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		f.heap[i], f.heap[small] = f.heap[small], f.heap[i]
		i = small
	}
	return top
}

func (f *FabricSim) less(a, b int) bool {
	if f.heap[a].at != f.heap[b].at {
		return f.heap[a].at < f.heap[b].at
	}
	return f.heap[a].seq < f.heap[b].seq
}
