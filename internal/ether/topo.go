package ether

import (
	"fmt"

	"dcsctrl/internal/sim"
)

// RackSpec describes a two-tier switched fabric: N nodes hang off
// top-of-rack (ToR) switches, and the ToRs are fully meshed through a
// spine tier. Every link has a fixed propagation latency and a line
// rate; the fixed latencies are what make conservative parallel
// execution possible (see Topology.Lookahead and internal/sim/shard).
type RackSpec struct {
	Nodes       int // leaf node count (1..65536)
	NodesPerToR int // leaf radix; default 16
	Spines      int // spine switch count; default 2 (unused with one ToR)

	NodeBps  float64 // node access-link rate; default 10 Gbit/s
	SpineBps float64 // ToR-spine uplink rate; default 40 Gbit/s

	NodeLinkLat  sim.Time // access-link propagation per hop; default 2µs
	SpineLinkLat sim.Time // uplink propagation per hop; default 1µs
	FwdDelay     sim.Time // per-switch forwarding latency; default 300ns
}

// withDefaults fills zero fields with the calibrated defaults.
func (s RackSpec) withDefaults() RackSpec {
	if s.NodesPerToR <= 0 {
		s.NodesPerToR = 16
	}
	if s.Spines <= 0 {
		s.Spines = 2
	}
	if s.NodeBps <= 0 {
		s.NodeBps = 10e9
	}
	if s.SpineBps <= 0 {
		s.SpineBps = 40e9
	}
	if s.NodeLinkLat <= 0 {
		s.NodeLinkLat = 2 * sim.Microsecond
	}
	if s.SpineLinkLat <= 0 {
		s.SpineLinkLat = 1 * sim.Microsecond
	}
	if s.FwdDelay <= 0 {
		s.FwdDelay = 300 * sim.Nanosecond
	}
	return s
}

// Topology is a validated rack fabric: addressing, routing, and the
// conservative lookahead bound derived from its link latencies.
type Topology struct {
	spec RackSpec
	tors int
}

// NewTopology validates the spec and returns the topology.
func NewTopology(spec RackSpec) *Topology {
	spec = spec.withDefaults()
	if spec.Nodes < 1 || spec.Nodes > 1<<16 {
		panic(fmt.Sprintf("ether: rack node count %d out of range [1, 65536]", spec.Nodes))
	}
	tors := (spec.Nodes + spec.NodesPerToR - 1) / spec.NodesPerToR
	return &Topology{spec: spec, tors: tors}
}

// Spec returns the topology's (defaulted) specification.
func (t *Topology) Spec() RackSpec { return t.spec }

// Nodes returns the leaf node count.
func (t *Topology) Nodes() int { return t.spec.Nodes }

// ToRs returns the top-of-rack switch count.
func (t *Topology) ToRs() int { return t.tors }

// ToROf returns the ToR switch a node hangs off.
func (t *Topology) ToROf(node int) int { return node / t.spec.NodesPerToR }

// SpineFor returns the spine carrying traffic from src to dst —
// deterministic ECMP: the pick depends only on the node pair, never on
// arrival order, so routing is identical at any domain decomposition.
func (t *Topology) SpineFor(src, dst int) int { return (src + dst) % t.spec.Spines }

// NodeIP returns node i's address. Byte 0 is the 10/8 rack prefix and
// bytes 1–2 carry the node index, so routing can recover the
// destination from a frame's IP header alone (NodeOfIP).
func (t *Topology) NodeIP(i int) IP { return IP{10, byte(i >> 8), byte(i), 1} }

// NodeMAC returns node i's locally administered MAC.
func (t *Topology) NodeMAC(i int) MAC { return MAC{0x02, 0, 0, byte(i >> 8), byte(i), 1} }

// NodeOfIP inverts NodeIP; ok is false for addresses outside the rack.
func (t *Topology) NodeOfIP(ip IP) (int, bool) {
	if ip[0] != 10 || ip[3] != 1 {
		return 0, false
	}
	n := int(ip[1])<<8 | int(ip[2])
	if n >= t.spec.Nodes {
		return 0, false
	}
	return n, true
}

// Lookahead is the conservative synchronization quantum: the minimum
// delay between a frame's injection (its last transmit-side NIC event)
// and the earliest fabric event it can create. A frame injected at
// time T first contends for a switch output port at
// T + NodeLinkLat + FwdDelay, so as long as execution windows are no
// longer than this bound, (a) the sequential fabric engine never sees
// an event earlier than anything it already processed, and (b) every
// delivery lands strictly after the window that produced it
// (end-to-end latency adds at least one more serialization and
// propagation on top of the bound). Spine latencies do not constrain
// the bound: spine events are created by fabric-internal processing,
// which the engine's event heap already orders.
func (t *Topology) Lookahead() sim.Time { return t.spec.NodeLinkLat + t.spec.FwdDelay }
