package ether

// Flow-level fidelity: the per-flow transmit state machine deciding
// when a connection's outbound stream is in steady state, i.e. when
// the NIC may legally collapse a burst of frames into one analytic
// flow segment (sim.WireFlow). The machine is pure bookkeeping over
// burst classifications — it owns no clocks and touches no simulator
// state — so every transition is table-testable.
//
// The crossover contract (DESIGN.md §13): a flow segment may only be
// emitted while the state machine reports Steady, and the NIC must
// additionally verify the mechanical conditions of the moment (no
// armed fault site on the path, wire backlog analytic, frame budget
// within the FIFO cap). Everything that is not provably collapsible —
// connection setup and teardown, short messages, bare ACKs and other
// control packets, bursts sent while a fault site is armed — stays at
// per-frame fidelity.

// FlowPhase is the fidelity phase of one transmit direction.
type FlowPhase int

const (
	// FlowIdle: no recent bulk traffic; everything is per-frame.
	FlowIdle FlowPhase = iota
	// FlowRamp: bulk bursts observed, but not yet enough consecutive
	// ones to trust the stream as steady.
	FlowRamp
	// FlowSteady: back-to-back bulk bursts; segments may be emitted.
	FlowSteady
	// FlowDrain: teardown seen (FIN/RST); the stream is winding down
	// per-frame until new traffic re-ramps it.
	FlowDrain
)

// String implements fmt.Stringer for test failure messages.
func (p FlowPhase) String() string {
	switch p {
	case FlowIdle:
		return "idle"
	case FlowRamp:
		return "ramp"
	case FlowSteady:
		return "steady"
	case FlowDrain:
		return "drain"
	}
	return "invalid"
}

// BurstClass classifies one transmit burst (the segments of one send
// chain) for the state machine.
type BurstClass int

const (
	// BurstBulk: full-size frames back to back, with at most a final
	// tail no smaller than ShortFrameBytes — the collapsible shape.
	BurstBulk BurstClass = iota
	// BurstShort: a short message or bare ACK; bypassed per-frame
	// without disturbing the phase.
	BurstShort
	// BurstSetup: connection establishment (SYN seen).
	BurstSetup
	// BurstTeardown: connection teardown (FIN or RST seen).
	BurstTeardown
)

// String implements fmt.Stringer for test failure messages.
func (c BurstClass) String() string {
	switch c {
	case BurstBulk:
		return "bulk"
	case BurstShort:
		return "short"
	case BurstSetup:
		return "setup"
	case BurstTeardown:
		return "teardown"
	}
	return "invalid"
}

const (
	// ShortFrameBytes is the payload size below which a single-frame
	// burst is a short message rather than the tail of a bulk stream.
	ShortFrameBytes = 256

	// steadyAfter is how many consecutive bulk bursts promote a flow
	// from ramp to steady. Two keeps the per-frame prefix short while
	// still refusing to collapse a first-of-its-kind burst.
	steadyAfter = 2
)

// ClassifySegments classifies one burst of segments (one send chain).
func ClassifySegments(segs []Segment) BurstClass {
	for i := range segs {
		if segs[i].Flags&FlagSYN != 0 {
			return BurstSetup
		}
		if segs[i].Flags&(FlagFIN|FlagRST) != 0 {
			return BurstTeardown
		}
	}
	if len(segs) == 0 {
		return BurstShort
	}
	for i := 0; i < len(segs)-1; i++ {
		if len(segs[i].Payload) != MSS {
			return BurstShort
		}
	}
	if len(segs[len(segs)-1].Payload) < ShortFrameBytes {
		return BurstShort
	}
	return BurstBulk
}

// FlowState tracks the fidelity phase of one transmit direction of a
// connection. The zero value is a flow at FlowIdle.
type FlowState struct {
	phase FlowPhase
	runs  int // consecutive bulk bursts in the current ramp
}

// Phase returns the current phase.
func (s *FlowState) Phase() FlowPhase { return s.phase }

// Eligible reports whether the flow may emit segments right now.
func (s *FlowState) Eligible() bool { return s.phase == FlowSteady }

// Observe feeds one burst classification through the machine and
// returns the phase the burst itself must be transmitted under (the
// transition happens before the burst is sent, so the burst that
// completes a ramp is already collapsible).
func (s *FlowState) Observe(c BurstClass) FlowPhase {
	switch c {
	case BurstSetup:
		s.phase, s.runs = FlowIdle, 0
	case BurstTeardown:
		s.phase, s.runs = FlowDrain, 0
	case BurstShort:
		// Bypass: short messages ride per-frame without resetting the
		// ramp — a keep-alive inside a bulk stream must not demote it.
	case BurstBulk:
		switch s.phase {
		case FlowIdle, FlowDrain:
			s.phase, s.runs = FlowRamp, 1
		case FlowRamp:
			s.runs++
			if s.runs >= steadyAfter {
				s.phase = FlowSteady
			}
		case FlowSteady:
			// Stays steady.
		}
	}
	return s.phase
}

// Demote drops the flow back to idle — called when a fault site on
// the transmit path is armed, so the stream must re-earn steady state
// after the hazard clears.
func (s *FlowState) Demote() {
	s.phase, s.runs = FlowIdle, 0
}
