package ether

// Checkpoint accessors (DESIGN.md §17). The flow state machine's two
// fields are schedule state — the phase decides whether the next burst
// collapses to a flow segment — so checkpoints must carry them. The
// package stays codec-free; the NIC snapshot encodes the pair.

// CheckpointFlow returns the machine's phase and ramp run count.
func (s *FlowState) CheckpointFlow() (FlowPhase, int) { return s.phase, s.runs }

// RestoreFlow overlays a captured phase and ramp run count.
func (s *FlowState) RestoreFlow(phase FlowPhase, runs int) {
	s.phase, s.runs = phase, runs
}
