// Package ether implements the packet formats the NIC models exchange:
// Ethernet II framing, IPv4 and TCP headers with real checksums, and
// large-send-offload (LSO) segmentation. Frames are real byte slices;
// the receive path verifies checksums, so header generation in the HDC
// Engine's NIC controller is functionally checked, not assumed.
package ether

import (
	"encoding/binary"
	"fmt"
)

// Frame geometry.
const (
	EthHeaderLen  = 14
	IPv4HeaderLen = 20
	TCPHeaderLen  = 20
	HeadersLen    = EthHeaderLen + IPv4HeaderLen + TCPHeaderLen

	// MTU is the IP MTU; MSS is the TCP payload per segment.
	MTU = 1500
	MSS = MTU - IPv4HeaderLen - TCPHeaderLen // 1460

	// WireOverhead is the per-frame on-wire cost beyond the frame
	// bytes: preamble+SFD (8), FCS (4), inter-frame gap (12). This is
	// why a 10-GbE link delivers ≈9.4 Gbps of TCP payload — the
	// paper's "effective bandwidth ... around 9 Gbps" footnote.
	WireOverhead = 24

	EtherTypeIPv4 = 0x0800
	ProtoTCP      = 6
)

// TCP flags.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
)

// MAC is an Ethernet address.
type MAC [6]byte

// IP is an IPv4 address.
type IP [4]byte

// String formats the address dotted-quad.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Flow identifies one direction of a TCP connection.
type Flow struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IP
	SrcPort, DstPort uint16
}

// Reverse returns the opposite direction of the flow.
func (f Flow) Reverse() Flow {
	return Flow{
		SrcMAC: f.DstMAC, DstMAC: f.SrcMAC,
		SrcIP: f.DstIP, DstIP: f.SrcIP,
		SrcPort: f.DstPort, DstPort: f.SrcPort,
	}
}

// Tuple is the connection key as seen by a receiver (its local
// address last), used for flow-table lookups.
type Tuple struct {
	SrcIP, DstIP     IP
	SrcPort, DstPort uint16
}

// Tuple returns the flow's connection key.
func (f Flow) Tuple() Tuple {
	return Tuple{SrcIP: f.SrcIP, DstIP: f.DstIP, SrcPort: f.SrcPort, DstPort: f.DstPort}
}

// Segment is one TCP segment with its addressing.
type Segment struct {
	Flow    Flow
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Payload []byte
}

// WireLen returns the frame length plus fixed on-wire overhead — the
// bytes that occupy the link when this segment is transmitted.
func (s *Segment) WireLen() int { return HeadersLen + len(s.Payload) + WireOverhead }

// Marshal builds the full Ethernet frame with valid IPv4 and TCP
// checksums.
func (s *Segment) Marshal() []byte { return s.MarshalTo(nil) }

// MarshalTo is Marshal into a reusable buffer: b's backing array is
// used when it has capacity (its header span is re-zeroed first, so a
// recycled frame buffer yields bit-identical frames), otherwise a
// fresh slice is allocated. Returns the marshalled frame.
func (s *Segment) MarshalTo(b []byte) []byte {
	total := HeadersLen + len(s.Payload)
	if cap(b) < total {
		b = make([]byte, total)
	} else {
		b = b[:total]
		for i := range b[:HeadersLen] {
			b[i] = 0
		}
	}

	// Ethernet header.
	copy(b[0:6], s.Flow.DstMAC[:])
	copy(b[6:12], s.Flow.SrcMAC[:])
	binary.BigEndian.PutUint16(b[12:14], EtherTypeIPv4)

	// IPv4 header.
	ip := b[EthHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(IPv4HeaderLen+TCPHeaderLen+len(s.Payload)))
	ip[8] = 64 // TTL
	ip[9] = ProtoTCP
	copy(ip[12:16], s.Flow.SrcIP[:])
	copy(ip[16:20], s.Flow.DstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:IPv4HeaderLen]))

	// TCP header.
	tcp := b[EthHeaderLen+IPv4HeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:2], s.Flow.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:4], s.Flow.DstPort)
	binary.BigEndian.PutUint32(tcp[4:8], s.Seq)
	binary.BigEndian.PutUint32(tcp[8:12], s.Ack)
	tcp[12] = 5 << 4 // data offset: 5 words
	tcp[13] = s.Flags
	binary.BigEndian.PutUint16(tcp[14:16], 0xFFFF) // window
	copy(tcp[TCPHeaderLen:], s.Payload)
	binary.BigEndian.PutUint16(tcp[16:18],
		tcpChecksum(s.Flow.SrcIP, s.Flow.DstIP, tcp[:TCPHeaderLen+len(s.Payload)]))

	return b
}

// Parse decodes and verifies a frame produced by Marshal. Checksum
// failures and malformed headers are errors. The returned payload is
// a copy, safe to retain; hot receive paths that consume the payload
// before the frame buffer is reused should use ParseView.
func Parse(b []byte) (Segment, error) {
	s, err := ParseView(b)
	if err == nil {
		s.Payload = append([]byte(nil), s.Payload...)
	}
	return s, err
}

// ParseView is Parse without the payload copy: the returned segment's
// Payload aliases b, so it is only valid as long as b is — the caller
// must copy before retaining it past the frame buffer's reuse (see
// DESIGN.md §11).
func ParseView(b []byte) (Segment, error) {
	var s Segment
	if len(b) < HeadersLen {
		return s, fmt.Errorf("ether: frame too short (%d bytes)", len(b))
	}
	copy(s.Flow.DstMAC[:], b[0:6])
	copy(s.Flow.SrcMAC[:], b[6:12])
	if et := binary.BigEndian.Uint16(b[12:14]); et != EtherTypeIPv4 {
		return s, fmt.Errorf("ether: unexpected ethertype %#x", et)
	}
	ip := b[EthHeaderLen:]
	if ip[0] != 0x45 {
		return s, fmt.Errorf("ether: unexpected IP version/IHL %#x", ip[0])
	}
	if ip[9] != ProtoTCP {
		return s, fmt.Errorf("ether: unexpected protocol %d", ip[9])
	}
	if ipChecksum(ip[:IPv4HeaderLen]) != 0 {
		return s, fmt.Errorf("ether: bad IPv4 checksum")
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if totalLen < IPv4HeaderLen+TCPHeaderLen || EthHeaderLen+totalLen > len(b) {
		return s, fmt.Errorf("ether: bad IP total length %d", totalLen)
	}
	copy(s.Flow.SrcIP[:], ip[12:16])
	copy(s.Flow.DstIP[:], ip[16:20])

	tcp := b[EthHeaderLen+IPv4HeaderLen : EthHeaderLen+totalLen]
	if tcpChecksum(s.Flow.SrcIP, s.Flow.DstIP, tcp) != 0 {
		return s, fmt.Errorf("ether: bad TCP checksum")
	}
	s.Flow.SrcPort = binary.BigEndian.Uint16(tcp[0:2])
	s.Flow.DstPort = binary.BigEndian.Uint16(tcp[2:4])
	s.Seq = binary.BigEndian.Uint32(tcp[4:8])
	s.Ack = binary.BigEndian.Uint32(tcp[8:12])
	s.Flags = tcp[13]
	s.Payload = tcp[TCPHeaderLen:]
	return s, nil
}

// ParseHeaders decodes the addressing of a prototype frame without
// verifying checksums — what a NIC's large-send-offload engine does
// with the header template software hands it (the real checksums are
// generated per segment by checksum offload). The returned segment
// carries no payload.
func ParseHeaders(b []byte) (Segment, error) {
	var s Segment
	if len(b) < HeadersLen {
		return s, fmt.Errorf("ether: header template too short (%d bytes)", len(b))
	}
	copy(s.Flow.DstMAC[:], b[0:6])
	copy(s.Flow.SrcMAC[:], b[6:12])
	if et := binary.BigEndian.Uint16(b[12:14]); et != EtherTypeIPv4 {
		return s, fmt.Errorf("ether: unexpected ethertype %#x", et)
	}
	ip := b[EthHeaderLen:]
	if ip[0] != 0x45 || ip[9] != ProtoTCP {
		return s, fmt.Errorf("ether: unsupported header template")
	}
	copy(s.Flow.SrcIP[:], ip[12:16])
	copy(s.Flow.DstIP[:], ip[16:20])
	tcp := b[EthHeaderLen+IPv4HeaderLen:]
	s.Flow.SrcPort = binary.BigEndian.Uint16(tcp[0:2])
	s.Flow.DstPort = binary.BigEndian.Uint16(tcp[2:4])
	s.Seq = binary.BigEndian.Uint32(tcp[4:8])
	s.Ack = binary.BigEndian.Uint32(tcp[8:12])
	s.Flags = tcp[13]
	return s, nil
}

// HeaderTemplate builds the 54-byte prototype frame header for a send
// job: addressing and sequence number filled in, checksums zero (the
// transmit path computes them per segment).
func HeaderTemplate(flow Flow, seq uint32, flags uint8) []byte {
	return HeaderTemplateTo(nil, flow, seq, flags)
}

// HeaderTemplateTo is HeaderTemplate into a caller-owned buffer: when
// cap(b) is large enough the backing array is reused and nothing is
// allocated. Callers that retain the previous template must copy it
// before reusing the buffer.
func HeaderTemplateTo(b []byte, flow Flow, seq uint32, flags uint8) []byte {
	s := Segment{Flow: flow, Seq: seq, Flags: flags}
	frame := s.MarshalTo(b)
	hdr := frame[:HeadersLen]
	// Zero the checksums: the template is not a valid frame.
	hdr[EthHeaderLen+10] = 0
	hdr[EthHeaderLen+11] = 0
	hdr[EthHeaderLen+IPv4HeaderLen+16] = 0
	hdr[EthHeaderLen+IPv4HeaderLen+17] = 0
	return hdr
}

// Segmentize splits payload into MSS-sized segments starting at seq —
// what the NIC's large-send-offload engine does in hardware. The final
// segment carries PSH. Each segment's payload is an independent copy;
// transmit paths that marshal the segments before the source buffer
// is reused should use AppendSegments to skip the copies.
func Segmentize(flow Flow, seq uint32, payload []byte, mss int) []Segment {
	out := AppendSegments(nil, flow, seq, payload, mss)
	for i := range out {
		out[i].Payload = append([]byte(nil), out[i].Payload...)
	}
	return out
}

// AppendSegments is Segmentize into a caller-owned slice and without
// the payload copies: each segment's Payload aliases the corresponding
// window of payload, so the segments are only valid while payload is
// stable (see DESIGN.md §11). It appends to dst and returns the
// extended slice, allocating nothing when dst has capacity.
func AppendSegments(dst []Segment, flow Flow, seq uint32, payload []byte, mss int) []Segment {
	if mss <= 0 {
		mss = MSS
	}
	if len(payload) == 0 {
		return append(dst, Segment{Flow: flow, Seq: seq, Flags: FlagACK | FlagPSH})
	}
	for off := 0; off < len(payload); off += mss {
		end := off + mss
		if end > len(payload) {
			end = len(payload)
		}
		seg := Segment{Flow: flow, Seq: seq + uint32(off), Flags: FlagACK,
			Payload: payload[off:end]}
		if end == len(payload) {
			seg.Flags |= FlagPSH
		}
		dst = append(dst, seg)
	}
	return dst
}

// ipChecksum computes the ones'-complement header checksum; over a
// header whose checksum field is filled in, the result is zero.
func ipChecksum(h []byte) uint16 {
	return onesComplement(sum16(h, 0))
}

// tcpChecksum computes the TCP checksum including the IPv4
// pseudo-header; over a segment with the checksum field filled in,
// the result is zero.
func tcpChecksum(src, dst IP, tcp []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = ProtoTCP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(tcp)))
	return onesComplement(sum16(tcp, sum16(pseudo[:], 0)))
}

func sum16(b []byte, acc uint32) uint32 {
	// Fold four big-endian words per 8-byte load. uint32 addition is
	// associative and commutative mod 2^32, so any regrouping of the
	// word sums — including this one — is bit-identical to the
	// two-bytes-at-a-time loop below.
	for len(b) >= 8 {
		v := binary.BigEndian.Uint64(b)
		acc += uint32(v>>48) + uint32(v>>32)&0xFFFF + uint32(v>>16)&0xFFFF + uint32(v)&0xFFFF
		b = b[8:]
	}
	for i := 0; i+1 < len(b); i += 2 {
		acc += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		acc += uint32(b[len(b)-1]) << 8
	}
	return acc
}

func onesComplement(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
