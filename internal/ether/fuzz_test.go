package ether

import (
	"bytes"
	"testing"
)

// fuzzFlow derives a flow deterministically from fuzz-provided bytes
// (testing.F cannot pass fixed-size arrays).
func fuzzFlow(addr []byte, srcPort, dstPort uint16) Flow {
	var fl Flow
	for i, b := range addr {
		switch {
		case i < 6:
			fl.SrcMAC[i] = b
		case i < 12:
			fl.DstMAC[i-6] = b
		case i < 16:
			fl.SrcIP[i-12] = b
		case i < 20:
			fl.DstIP[i-16] = b
		}
	}
	fl.SrcPort, fl.DstPort = srcPort, dstPort
	return fl
}

// FuzzSegmentRoundTrip checks Marshal→Parse over arbitrary segments:
// the parse must succeed (checksums are freshly generated) and return
// identical addressing, sequencing, and payload — and a single
// corrupted payload byte must be rejected by the TCP checksum.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte{2, 0, 0, 0, 0, 1, 2, 0, 0, 0, 0, 2, 10, 0, 0, 1, 10, 0, 0, 2},
		uint16(8000), uint16(40000), uint32(0), uint32(0), uint8(FlagACK|FlagPSH), []byte("hello"))
	f.Add([]byte{}, uint16(0), uint16(0), uint32(1<<31), uint32(7), uint8(FlagSYN), []byte{})
	f.Fuzz(func(t *testing.T, addr []byte, srcPort, dstPort uint16, seq, ack uint32, flags uint8, payload []byte) {
		if len(payload) > MSS {
			payload = payload[:MSS]
		}
		in := Segment{Flow: fuzzFlow(addr, srcPort, dstPort), Seq: seq, Ack: ack, Flags: flags, Payload: payload}
		frame := in.Marshal()
		out, err := Parse(frame)
		if err != nil {
			t.Fatalf("parse of marshalled frame failed: %v", err)
		}
		if out.Flow != in.Flow || out.Seq != in.Seq || out.Ack != in.Ack || out.Flags != in.Flags {
			t.Fatalf("header mismatch:\n in: %+v\nout: %+v", in, out)
		}
		if !bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("payload mismatch: %d in, %d out", len(in.Payload), len(out.Payload))
		}
		if len(payload) > 0 {
			bad := append([]byte(nil), frame...)
			bad[len(bad)-1] ^= 0xFF
			if _, err := Parse(bad); err == nil {
				t.Fatal("corrupted frame passed checksum verification")
			}
		}
	})
}

// FuzzParse feeds arbitrary bytes to the frame parser: it must never
// panic, and any frame it accepts must survive a re-marshal/re-parse
// cycle unchanged at the segment level.
func FuzzParse(f *testing.F) {
	good := Segment{
		Flow: Flow{
			SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2},
			SrcIP: IP{10, 0, 0, 1}, DstIP: IP{10, 0, 0, 2},
			SrcPort: 8000, DstPort: 40000,
		},
		Seq: 1000, Flags: FlagACK, Payload: []byte("payload bytes"),
	}
	f.Add(good.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, HeadersLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Parse(b)
		if err != nil {
			return
		}
		re, err := Parse(s.Marshal())
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if re.Flow != s.Flow || re.Seq != s.Seq || re.Ack != s.Ack || re.Flags != s.Flags || !bytes.Equal(re.Payload, s.Payload) {
			t.Fatalf("re-parse mismatch:\n in: %+v\nout: %+v", s, re)
		}
	})
}
