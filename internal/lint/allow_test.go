package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text     string
		analyzer string
		ok       bool
	}{
		{"//dcslint:allow nowallclock host-side banner timing", "nowallclock", true},
		{"//dcslint:allow maporder caller sorts the result", "maporder", true},
		{"//dcslint:allow simtime raw cycle count", "simtime", true},
		{"//dcslint:allow nogoroutine fixture plumbing", "nogoroutine", true},
		{"//dcslint:allow noalloc capacity preserved across calls", "noalloc", true},
		{"//dcslint:allow shardsafe merged at the barrier", "shardsafe", true},
		{"//dcslint:allow nowallclock", "", false},                // missing reason
		{"//dcslint:allow", "", false},                            // missing everything
		{"//dcslint:allow nosuchanalyzer some reason", "", false}, // unknown analyzer
		{"//dcslint:allowx nowallclock reason", "", false},        // mangled verb
	}
	for _, c := range cases {
		name, ok := parseDirective(c.text)
		if ok != c.ok || (ok && name != c.analyzer) {
			t.Errorf("parseDirective(%q) = %q, %v; want %q, %v",
				c.text, name, ok, c.analyzer, c.ok)
		}
	}
}

// A directive suppresses its analyzer on its own line and the line
// directly below — no further, and never for other analyzers.
func TestAllowSetCoverage(t *testing.T) {
	src := `package p

func f() {
	//dcslint:allow nowallclock reason on its own line
	g()
	g() //dcslint:allow simtime trailing reason
	g()
}

func g() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allows, bad := parseAllows(fset, []*ast.File{f})
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	at := func(line int) token.Position {
		return token.Position{Filename: "p.go", Line: line}
	}
	checks := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "nowallclock", true},  // directive's own line
		{5, "nowallclock", true},  // line below the standalone directive
		{6, "nowallclock", false}, // out of range
		{5, "simtime", false},     // other analyzers unaffected
		{6, "simtime", true},      // trailing directive's own line
		{7, "simtime", true},      // and the line below it
		{8, "simtime", false},
	}
	for _, c := range checks {
		if got := allows.allowed(at(c.line), c.analyzer); got != c.want {
			t.Errorf("allowed(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

// Regression test: a directive woven into a multi-line comment group
// must attach to the line after the WHOLE group — the code the group
// annotates — not just the next comment line. Before the fix the
// suppression window was {L, L+1} only, so an allow followed by one
// more line of explanation silently stopped covering anything.
func TestAllowInsideCommentGroup(t *testing.T) {
	src := `package p

func f() {
	// The iteration below is order-independent because the
	//dcslint:allow maporder result feeds a sort before use
	// and the sort normalizes whatever order the range produced.
	g()
	g()
}

func g() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allows, bad := parseAllows(fset, []*ast.File{f})
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	at := func(line int) token.Position {
		return token.Position{Filename: "p.go", Line: line}
	}
	if !allows.allowed(at(7), "maporder") {
		t.Errorf("directive inside a comment group must cover the line after the group (line 7)")
	}
	if allows.allowed(at(8), "maporder") {
		t.Errorf("suppression must stop at the first code line after the group")
	}
}

// //dcslint:hotpath is the noalloc root marker, not an allow: the
// directive parser must pass over it without reporting it malformed.
func TestHotpathDirectiveNotMalformed(t *testing.T) {
	src := `package p

//dcslint:hotpath some_bench
func f() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	_, bad := parseAllows(fset, []*ast.File{f})
	if len(bad) != 0 {
		t.Fatalf("hotpath directive reported as malformed: %v", bad)
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	src := "package p\n\n//dcslint:allow nowallclock\nfunc f() {}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	_, bad := parseAllows(fset, []*ast.File{f})
	if len(bad) != 1 {
		t.Fatalf("got %d malformed-directive diagnostics, want 1: %v", len(bad), bad)
	}
	if bad[0].Analyzer != "dcslint" {
		t.Errorf("malformed directive attributed to %q, want dcslint", bad[0].Analyzer)
	}
}

// Policy: the wall-clock and goroutine bans cover exactly the
// simulation packages (the kernel keeps its own goroutines), while
// maporder/simtime also cover reporting and facade code but skip
// host-side tooling.
func TestApplies(t *testing.T) {
	cases := []struct {
		analyzer string
		pkg      string
		want     bool
	}{
		{"nowallclock", "dcsctrl/internal/hdc", true},
		{"nowallclock", "dcsctrl/internal/sim", true},
		{"nowallclock", "dcsctrl/internal/bench", false},
		{"nowallclock", "dcsctrl/cmd/dcsbench", false},
		{"nogoroutine", "dcsctrl/internal/sim", false},       // the kernel owns concurrency
		{"nogoroutine", "dcsctrl/internal/sim/shard", false}, // so does the shard kernel
		{"nogoroutine", "dcsctrl/internal/nvme", true},
		{"nogoroutine", "dcsctrl/internal/ether", true}, // topology/fabric stay model code
		{"nogoroutine", "dcsctrl/internal/core", true},  // Rack wiring stays model code
		{"nogoroutine", "dcsctrl/internal/bench", false},
		{"nowallclock", "dcsctrl/internal/sim/shard", true}, // shard exemption is goroutines only
		{"maporder", "dcsctrl/internal/report", true},
		{"maporder", "dcsctrl", true},
		{"maporder", "dcsctrl/cmd/dcslint", false},
		{"simtime", "dcsctrl/internal/fault", true},
		{"simtime", "dcsctrl/internal/bench", false},
		{"simtime", "other.example/pkg", false},
	}
	for _, c := range cases {
		a := byName(c.analyzer)
		if a == nil {
			t.Fatalf("unknown analyzer %q", c.analyzer)
		}
		if got := Applies(a, c.pkg); got != c.want {
			t.Errorf("Applies(%s, %s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}
