package lint

import (
	"go/ast"
	"go/types"
)

// NoGoroutine flags `go` statements and raw channel makes in model
// code. The DES kernel owns all concurrency: exactly one goroutine
// (the Run caller or the current process) executes model code at any
// instant, and park/resume hands control directly between processes.
// A stray goroutine or ad-hoc channel in a device model reintroduces
// scheduler nondeterminism and can deadlock the single-runnable-
// process handoff. Models spawn concurrent activities with
// sim.Env.Spawn and synchronise through sim.Queue / sim.Resource /
// sim.Signal.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc: "forbid go statements and channel makes outside the DES kernel\n\n" +
		"Model concurrency must go through sim.Env.Spawn and the kernel's " +
		"synchronisation types; raw goroutines break the single-runnable-" +
		"process invariant the park/resume handoff depends on.",
	Run: runNoGoroutine,
}

func runNoGoroutine(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement in model code; spawn simulated processes with "+
						"sim.Env.Spawn — the kernel's park/resume handoff requires "+
						"exactly one runnable goroutine")
			case *ast.CallExpr:
				if isChanMake(pass.TypesInfo, n) {
					pass.Reportf(n.Pos(),
						"raw channel make in model code; synchronise through the "+
							"kernel's sim.Queue / sim.Resource / sim.Signal so event "+
							"ordering stays deterministic")
				}
			}
			return true
		})
	}
	return nil
}

// isChanMake reports whether call is make(chan ...). The builtin make
// has no types.Func object, so detect it as an ident named "make"
// that types resolved to the universe builtin, with a channel type
// argument.
func isChanMake(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || !tv.IsType() {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
