package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks packages from source using only the standard
// library: one `go list -deps -json` invocation yields the full
// import closure (standard library included) in dependency order,
// and each package is then checked exactly once against a shared
// cache. This replaces golang.org/x/tools/go/packages, which the
// zero-dependency build cannot import.
type Loader struct {
	Dir   string // working directory for `go list` (anywhere in the module)
	fset  *token.FileSet
	cache map[string]*types.Package
}

// NewLoader returns a loader running `go list` in dir ("" = cwd).
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:   dir,
		fset:  token.NewFileSet(),
		cache: map[string]*types.Package{"unsafe": types.Unsafe},
	}
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

func (l *Loader) goList(patterns ...string) ([]listPkg, error) {
	args := append([]string{
		"list", "-deps",
		"-json=ImportPath,Dir,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	// cgo off: every package type-checks from pure-Go sources, so no
	// generated cgo files are needed and the closure stays loadable.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&out)
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// Load type-checks the packages matching patterns plus their entire
// import closure, returning the matched (non-dependency) packages
// with syntax and type information retained for analysis.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	pkgs, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var targets []*Package
	for _, lp := range pkgs {
		keep := !lp.DepOnly
		p, err := l.check(lp, keep)
		if err != nil {
			return nil, err
		}
		if keep && p != nil {
			targets = append(targets, p)
		}
	}
	return targets, nil
}

// check parses and type-checks one listed package, caching the result.
// When keep is true the syntax trees and types.Info are returned for
// analysis; dependencies are checked and dropped.
func (l *Loader) check(lp listPkg, keep bool) (*Package, error) {
	if lp.ImportPath == "unsafe" {
		return nil, nil
	}
	if _, done := l.cache[lp.ImportPath]; done && !keep {
		return nil, nil
	}
	mode := parser.SkipObjectResolution
	if keep {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, mode)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(lp.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	l.cache[lp.ImportPath] = tpkg
	if !keep {
		return nil, nil
	}
	return &Package{Path: lp.ImportPath, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// Import implements types.Importer against the cache, loading the
// import closure of a missing path on demand (used by the test
// harness, whose testdata packages import paths — math/rand, the sim
// kernel — that may not be in the initial closure).
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	pkgs, err := l.goList(path)
	if err != nil {
		return nil, err
	}
	for _, lp := range pkgs {
		if _, err := l.check(lp, false); err != nil {
			return nil, err
		}
	}
	p, ok := l.cache[path]
	if !ok {
		return nil, fmt.Errorf("import %q: not found", path)
	}
	return p, nil
}

// CheckDir parses and type-checks every non-test .go file in dir as a
// single package (import path = path), resolving imports through the
// loader. Used by the analysistest harness on testdata packages,
// which live outside the go tool's view of the module.
func (l *Loader) CheckDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", dir, err)
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}
