package lint

import (
	"go/ast"
	"go/types"
)

// NoChainRecursion flags continuations that re-enter sim.Env.Chain.
// Chain inlines its continuation on the caller's Go stack whenever the
// current instant has nothing else pending, so a continuation that
// chains again — itself directly, itself through a captured variable,
// or any nested Chain call — recurses on the real stack until the
// kernel's depth guard panics. Repetition belongs in Env.Schedule or a
// spawned process loop, where each step is a fresh event.
var NoChainRecursion = &Analyzer{
	Name: "nochainrecursion",
	Doc: "forbid continuations that re-enter sim.Env.Chain\n\n" +
		"Chain runs its continuation inline when the instant is otherwise " +
		"idle, so a continuation that calls Chain again recurses on the Go " +
		"stack until the kernel's depth guard panics; repeat work with " +
		"Env.Schedule or a process loop instead.",
	Run: runNoChainRecursion,
}

func runNoChainRecursion(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// Nested chain: a function literal passed straight to
				// Chain must not itself call Chain.
				if isEnvChain(pass.TypesInfo, n) && len(n.Args) == 1 {
					if lit, ok := ast.Unparen(n.Args[0]).(*ast.FuncLit); ok {
						reportChainCalls(pass, lit.Body, nil,
							"Env.Chain inside a chained continuation recurses inline; "+
								"schedule the follow-up with Env.Schedule or drive it from a process loop")
					}
				}
			case *ast.FuncDecl:
				// Self-chain by name: a function or method passing
				// itself to Chain.
				if n.Body != nil {
					if fn, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
						reportChainCalls(pass, n.Body, fn,
							"continuation chains itself; Chain inlines same-instant "+
								"continuations, so self-chaining recurses until the depth "+
								"guard panics — use Env.Schedule or a process loop")
					}
				}
			case *ast.AssignStmt:
				// Self-chain through a captured binding:
				// loop = func() { env.Chain(loop) }.
				for i, rhs := range n.Rhs {
					lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
					if ok && i < len(n.Lhs) {
						if obj := refObject(pass.TypesInfo, n.Lhs[i]); obj != nil {
							reportChainCalls(pass, lit.Body, obj,
								"continuation chains itself through its own binding; Chain "+
									"inlines same-instant continuations, so this recurses until "+
									"the depth guard panics — use Env.Schedule or a process loop")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// reportChainCalls reports every Env.Chain call under root whose
// argument resolves to self (any argument when self is nil).
func reportChainCalls(pass *Pass, root ast.Node, self types.Object, msg string) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isEnvChain(pass.TypesInfo, call) {
			return true
		}
		if self == nil {
			pass.Reportf(call.Pos(), "%s", msg)
			return true
		}
		if len(call.Args) == 1 && refObject(pass.TypesInfo, call.Args[0]) == self {
			pass.Reportf(call.Pos(), "%s", msg)
		}
		return true
	})
}

// isEnvChain reports whether call invokes the sim kernel's
// (*Env).Chain method.
func isEnvChain(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Chain" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && isSimType(sig.Recv().Type(), "Env")
}

// refObject resolves expr — an identifier, field selector, or method
// value — to its types.Object, or nil for anything more complex.
func refObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}
