package lint

import (
	"fmt"
	"go/token"
	"io"
	"sort"
)

// Finding is one diagnostic resolved to a file position, ready to
// print or assert on.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Run loads the packages matching patterns (go list syntax, e.g.
// "./...") from dir and applies every analyzer the policy assigns to
// each package. Findings already suppressed by //dcslint:allow
// directives are dropped; malformed directives are reported as
// findings of the pseudo-analyzer "dcslint".
func Run(dir string, patterns ...string) ([]Finding, error) {
	loader := NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, RunPackage(pkg)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// RunPackage applies the applicable analyzers to one loaded package
// and returns the unsuppressed findings.
func RunPackage(pkg *Package) []Finding {
	allows, bad := parseAllows(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	diags = append(diags, bad...)
	for _, a := range Analyzers() {
		if !Applies(a, pkg.Path) {
			continue
		}
		diags = append(diags, runAnalyzer(a, pkg, allows)...)
	}
	var findings []Finding
	for _, d := range diags {
		findings = append(findings, Finding{
			Pos:      pkg.Fset.Position(d.Pos),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return findings
}

// Apply runs a single analyzer over one loaded package, honouring
// //dcslint:allow directives and reporting malformed directives, but
// ignoring the package-scope policy. This is the hook the
// analysistest harness drives testdata packages through.
func Apply(a *Analyzer, pkg *Package) []Finding {
	allows, bad := parseAllows(pkg.Fset, pkg.Files)
	diags := append([]Diagnostic{}, bad...)
	diags = append(diags, runAnalyzer(a, pkg, allows)...)
	var findings []Finding
	for _, d := range diags {
		findings = append(findings, Finding{
			Pos:      pkg.Fset.Position(d.Pos),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return findings
}

// runAnalyzer runs one analyzer over pkg, filtering allowed findings.
func runAnalyzer(a *Analyzer, pkg *Package, allows allowSet) []Diagnostic {
	var out []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d Diagnostic) {
			if d.Analyzer == "" {
				d.Analyzer = a.Name
			}
			if allows.allowed(pkg.Fset.Position(d.Pos), d.Analyzer) {
				return
			}
			out = append(out, d)
		},
	}
	if err := a.Run(pass); err != nil {
		out = append(out, Diagnostic{
			Pos:      pkg.Files[0].Pos(),
			Analyzer: a.Name,
			Message:  fmt.Sprintf("internal error: %v", err),
		})
	}
	return out
}

// Print writes findings one per line in file:line:col form.
func Print(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
}
