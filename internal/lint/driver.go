package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
)

// Finding is one diagnostic resolved to a file position, ready to
// print or assert on.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string

	// Chain is the interprocedural call chain (root first) for
	// module-analyzer findings; empty for per-package analyzers.
	Chain []ChainLink
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Run loads the packages matching patterns (go list syntax, e.g.
// "./...") from dir and applies every analyzer the policy assigns to
// each package, then the module analyzers (noalloc, shardsafe) over
// the whole loaded set. Findings already suppressed by
// //dcslint:allow directives are dropped; malformed directives are
// reported as findings of the pseudo-analyzer "dcslint".
func Run(dir string, patterns ...string) ([]Finding, error) {
	loader := NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	merged := allowSet{}
	for _, pkg := range pkgs {
		allows, bad := parseAllows(pkg.Fset, pkg.Files)
		merged.merge(allows)
		diags := append([]Diagnostic{}, bad...)
		for _, a := range Analyzers() {
			if !Applies(a, pkg.Path) {
				continue
			}
			diags = append(diags, runAnalyzer(a, pkg, allows)...)
		}
		findings = append(findings, toFindings(pkg.Fset, diags)...)
	}
	findings = append(findings, runModuleAnalyzers(pkgs, ModuleAnalyzers(), merged)...)
	sortFindings(findings)
	return findings, nil
}

// RunPackage applies the applicable per-package analyzers to one
// loaded package and returns the unsuppressed findings. Module
// analyzers need the whole load set and do not run here.
func RunPackage(pkg *Package) []Finding {
	allows, bad := parseAllows(pkg.Fset, pkg.Files)
	diags := append([]Diagnostic{}, bad...)
	for _, a := range Analyzers() {
		if !Applies(a, pkg.Path) {
			continue
		}
		diags = append(diags, runAnalyzer(a, pkg, allows)...)
	}
	return toFindings(pkg.Fset, diags)
}

// Apply runs a single analyzer over one loaded package, honouring
// //dcslint:allow directives and reporting malformed directives, but
// ignoring the package-scope policy. This is the hook the
// analysistest harness drives testdata packages through.
func Apply(a *Analyzer, pkg *Package) []Finding {
	allows, bad := parseAllows(pkg.Fset, pkg.Files)
	diags := append([]Diagnostic{}, bad...)
	diags = append(diags, runAnalyzer(a, pkg, allows)...)
	return toFindings(pkg.Fset, diags)
}

// ApplyModule runs a single module analyzer over a set of loaded
// packages (the analysistest harness passes one testdata package),
// honouring //dcslint:allow directives and reporting malformed ones.
func ApplyModule(ma *ModuleAnalyzer, pkgs ...*Package) []Finding {
	if len(pkgs) == 0 {
		return nil
	}
	merged := allowSet{}
	var bad []Diagnostic
	for _, pkg := range pkgs {
		allows, b := parseAllows(pkg.Fset, pkg.Files)
		merged.merge(allows)
		bad = append(bad, b...)
	}
	findings := toFindings(pkgs[0].Fset, bad)
	findings = append(findings, runModuleAnalyzers(pkgs, []*ModuleAnalyzer{ma}, merged)...)
	sortFindings(findings)
	return findings
}

// runAnalyzer runs one analyzer over pkg, filtering allowed findings.
func runAnalyzer(a *Analyzer, pkg *Package, allows allowSet) []Diagnostic {
	var out []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d Diagnostic) {
			if d.Analyzer == "" {
				d.Analyzer = a.Name
			}
			if allows.allowed(pkg.Fset.Position(d.Pos), d.Analyzer) {
				return
			}
			out = append(out, d)
		},
	}
	if err := a.Run(pass); err != nil {
		out = append(out, Diagnostic{
			Pos:      pkg.Files[0].Pos(),
			Analyzer: a.Name,
			Message:  fmt.Sprintf("internal error: %v", err),
		})
	}
	return out
}

// runModuleAnalyzers builds the facts layer once over pkgs and runs
// the given module analyzers, filtering allowed findings.
func runModuleAnalyzers(pkgs []*Package, mas []*ModuleAnalyzer, allows allowSet) []Finding {
	if len(pkgs) == 0 || len(mas) == 0 {
		return nil
	}
	facts := BuildFacts(pkgs)
	fset := facts.Fset
	var out []Diagnostic
	for _, ma := range mas {
		pass := &ModulePass{
			Analyzer: ma,
			Fset:     fset,
			Facts:    facts,
			Report: func(d Diagnostic) {
				if d.Analyzer == "" {
					d.Analyzer = ma.Name
				}
				if allows.allowed(fset.Position(d.Pos), d.Analyzer) {
					return
				}
				out = append(out, d)
			},
		}
		if err := ma.Run(pass); err != nil {
			out = append(out, Diagnostic{
				Pos:      pkgs[0].Files[0].Pos(),
				Analyzer: ma.Name,
				Message:  fmt.Sprintf("internal error: %v", err),
			})
		}
	}
	return toFindings(fset, out)
}

func toFindings(fset *token.FileSet, diags []Diagnostic) []Finding {
	var findings []Finding
	for _, d := range diags {
		findings = append(findings, Finding{
			Pos:      fset.Position(d.Pos),
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Chain:    d.Chain,
		})
	}
	return findings
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Print writes findings one per line in file:line:col form.
func Print(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
}

// jsonFinding is the machine-readable shape of one finding
// (cmd/dcslint -json); CI turns these into GitHub annotations.
type jsonFinding struct {
	File     string          `json:"file"`
	Line     int             `json:"line"`
	Column   int             `json:"column"`
	Analyzer string          `json:"analyzer"`
	Message  string          `json:"message"`
	Chain    []jsonChainLink `json:"chain,omitempty"`
}

type jsonChainLink struct {
	Func string `json:"func"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
}

// HotpathRoot describes one //dcslint:hotpath-annotated function:
// where it is, and which BENCH_dataplane.json benchmarks its
// zero-allocation promise anchors. cmd/benchdiff cross-checks this
// list against the dynamic allocs_per_op gate so the static and
// dynamic promises cannot drift apart.
type HotpathRoot struct {
	Func    string   `json:"func"`
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Benches []string `json:"benches,omitempty"`
}

// Hotpaths loads the packages matching patterns and returns the
// hotpath roots in source order.
func Hotpaths(dir string, patterns ...string) ([]HotpathRoot, error) {
	loader := NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	facts := BuildFacts(pkgs)
	out := make([]HotpathRoot, 0, len(facts.Roots))
	for _, root := range facts.Roots {
		p := facts.Fset.Position(root.Decl.Pos())
		out = append(out, HotpathRoot{
			Func:    root.Name(),
			File:    relFile(p.Filename),
			Line:    p.Line,
			Benches: root.Hotpath.Benches,
		})
	}
	return out, nil
}

// PrintHotpaths writes roots as an indented JSON array.
func PrintHotpaths(w io.Writer, roots []HotpathRoot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(roots)
}

// PrintJSON writes findings as a JSON array (one object per finding,
// stable field order, trailing newline).
func PrintJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		jf := jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
		for _, l := range f.Chain {
			jf.Chain = append(jf.Chain, jsonChainLink{Func: l.Func, File: l.File, Line: l.Line})
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
