// simtime cases: sim.Time is nanoseconds, and a bare literal mixed
// into Time arithmetic hides that unit. Scalar scaling and the zero
// value stay legal.
package simtime

import "dcsctrl/internal/sim"

func arithmetic(t sim.Time) sim.Time {
	u := t + 500 // want `raw integer literal 500 used with sim\.Time`
	u = u - 3 // want `raw integer literal 3 used with sim\.Time`
	u += 250 // want `raw integer literal 250 used with sim\.Time`
	u = 1000 + u // want `raw integer literal 1000 used with sim\.Time`
	return u
}

func comparisons(t sim.Time) bool {
	if t > 1000 { // want `raw integer literal 1000 used with sim\.Time`
		return true
	}
	return t != 7 // want `raw integer literal 7 used with sim\.Time`
}

func conversions(n int64) sim.Time {
	t := sim.Time(1500) // want `sim\.Time\(1500\) hides the unit`
	_ = t
	return sim.Time(n) // computed values carry their own provenance
}

func fine(t, d sim.Time) sim.Time {
	u := t + 3*sim.Microsecond
	u = u + d
	u = u * 2 // scalar scaling is legitimate
	u = u / 4
	if u == 0 { // the zero value needs no unit
		u = sim.Time(0)
	}
	if u > d {
		u -= sim.Nanosecond
	}
	return u
}

func allowed(t sim.Time) sim.Time {
	return t + 1500 //dcslint:allow simtime raw cycle count from the paper's Table 2
}
