// Flow-segment-shaped cases: the analytic fast path computes wire
// occupancy for a whole frame run, which is exactly where a raw
// nanosecond literal would silently disagree with the per-frame
// schedule it must mirror. The flagged lines are deliberately
// wrong; their expectation comments are the golden.
package simtime

import "dcsctrl/internal/sim"

const flowMSS = 1460

// segmentWireTime charges an analytic flow segment. The per-frame
// overhead must come from a named constant, not a bare literal.
func segmentWireTime(frames int, perFrame sim.Time) sim.Time {
	total := sim.Time(frames) * perFrame
	total += 300 // want `raw integer literal 300 used with sim\.Time`
	return total
}

// crossoverDeadline compares a segment's finish against a raw horizon.
func crossoverDeadline(finish sim.Time) bool {
	return finish > 2000 // want `raw integer literal 2000 used with sim\.Time`
}

// segmentStamp hides the unit entirely.
func segmentStamp() sim.Time {
	return sim.Time(12500) // want `sim\.Time\(12500\) hides the unit`
}

// segmentWireTimeRight is the legal spelling: derived durations and
// named unit constants only.
func segmentWireTimeRight(frames int, perFrame, overhead sim.Time) sim.Time {
	total := sim.Time(frames)*perFrame + overhead
	if total < sim.Microsecond {
		total = sim.Microsecond
	}
	return total
}
