// nogoroutine cases: model code must leave concurrency to the DES
// kernel. Only `go` statements and channel makes are flagged — other
// makes and ordinary calls are fine.
package nogoroutine

func spawns() {
	go drain() // want `go statement in model code`
	go func() {}() // want `go statement in model code`
}

func chans() {
	ch := make(chan int) // want `raw channel make in model code`
	buf := make(chan string, 4) // want `raw channel make in model code`
	_, _ = ch, buf
}

type msgChan chan int

func namedChanType() {
	ch := make(msgChan, 1) // want `raw channel make in model code`
	_ = ch
}

func fineMakes() {
	s := make([]int, 0, 8)
	m := make(map[string]int, 4)
	_, _ = s, m
}

func allowedTrailing() {
	go drain() //dcslint:allow nogoroutine off-timeline profiling helper, never scheduled by models
}

func allowedAbove() {
	//dcslint:allow nogoroutine fixture plumbing for a manual stress harness
	ch := make(chan struct{}, 1)
	_ = ch
}

func drain() {}
