// Worker-pool-shaped code: the exact idiom the shard kernel is
// allowed to use (task channel + spawned workers + barrier) must
// still be flagged when it appears in ordinary model packages —
// the policy carve-out is per-package, not per-shape.
package nogoroutine

import "sync"

type task func()

func workerPool(tasks []task) {
	ch := make(chan task, len(tasks)) // want `raw channel make in model code`
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { // want `go statement in model code`
			defer wg.Done()
			for t := range ch {
				t()
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
}
