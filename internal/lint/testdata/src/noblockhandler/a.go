// noblockhandler cases: a handler proc (sim.Env.SpawnHandler) runs
// inline on the dispatcher's goroutine, so its body must never reach
// a park-capable API — waiting is expressed by enrolling on a
// Signal/Cond edge or re-arming, never by blocking. The analyzer
// proves this transitively over the module call graph and flags
// unprovable dynamic calls conservatively.
package noblockhandler

import "dcsctrl/internal/sim"

type machine struct {
	env *sim.Env
	sig *sim.Signal
	q   *sim.Queue[int]
	res *sim.Resource
	p   *sim.Proc // a smuggled goroutine-proc handle: the bug under test
	fn  func()
}

// Clean handler: waits by enrolling on kernel edges and re-arming.
func spawnClean(env *sim.Env, sig *sim.Signal, q *sim.Queue[int]) {
	m := &machine{env: env, sig: sig, q: q}
	env.SpawnHandler("clean", m.runClean)
}

func (m *machine) runClean(h *sim.HandlerCtx) {
	if !m.sig.WaitH(h) {
		return
	}
	if v, ok := m.q.GetH(h); ok {
		_ = v
		h.Rearm(5)
	}
}

// The seeded violation from the acceptance criteria: the handler body
// parks directly through a blocking kernel API.
func spawnDirect(env *sim.Env, res *sim.Resource) {
	m := &machine{env: env, res: res}
	env.SpawnHandler("direct", m.runDirect)
}

func (m *machine) runDirect(h *sim.HandlerCtx) {
	m.res.Acquire(m.p) // want `handler proc \(\*noblockhandler\.machine\)\.runDirect reaches park-capable \(\*sim\.Resource\)\.Acquire`
	m.res.Release()
}

// A park two calls deep is found through the call graph; the chain
// names the API-level sink, not the kernel-internal park.
func spawnBlocking(env *sim.Env, sig *sim.Signal) {
	m := &machine{env: env, sig: sig}
	env.SpawnHandler("blocking", m.runBlocking)
}

func (m *machine) runBlocking(h *sim.HandlerCtx) {
	m.drain() // want `handler proc \(\*noblockhandler\.machine\)\.runBlocking reaches park-capable \(\*sim\.Signal\)\.Wait: .* \[\(\*noblockhandler\.machine\)\.runBlocking → \(\*noblockhandler\.machine\)\.drain → \(\*sim\.Signal\)\.Wait\]`
}

func (m *machine) drain() {
	m.sig.Wait(m.p)
}

// A dynamic call cannot be proven park-free: flagged conservatively.
func spawnDynamic(env *sim.Env, fn func()) {
	m := &machine{env: env, fn: fn}
	env.SpawnHandler("dynamic", m.runDynamic)
}

func (m *machine) runDynamic(h *sim.HandlerCtx) {
	m.fn() // want `cannot prove handler proc \(\*noblockhandler\.machine\)\.runDynamic never blocks: call through a func value`
}

// The escape hatch documents a proven-safe dynamic site.
func spawnAllowed(env *sim.Env, fn func()) {
	m := &machine{env: env, fn: fn}
	env.SpawnHandler("allowed", m.runAllowed)
}

func (m *machine) runAllowed(h *sim.HandlerCtx) {
	//dcslint:allow noblockhandler completion-fn table holds only event-scheduling closures
	m.fn()
}

// An opaque func value cannot be checked at all.
var opaque func(*sim.HandlerCtx)

func spawnOpaque(env *sim.Env) {
	env.SpawnHandler("opaque", opaque) // want `handler proc registered with an opaque func value dcslint cannot check for blocking calls \[noblockhandler\.spawnOpaque\]`
}

// A func literal body is checked like any named root.
func spawnLit(env *sim.Env, sig *sim.Signal) {
	env.SpawnHandler("lit", func(h *sim.HandlerCtx) {
		if !sig.WaitH(h) {
			return
		}
		h.Exit()
	})
}
