// Snapshot-codec cases: checkpoint encoders walk map-keyed device
// state (queue pairs by QID, flash blocks by LBA) into snap.Writer's
// length-prefixed byte stream, where every byte's POSITION is
// meaningful — a restore replays the stream into a fresh cluster and
// CI compares the bytes against a golden artifact. Ranging the map
// while encoding lets Go's randomized iteration order pick the byte
// order; the legal spelling is the collect/sort/index idiom the real
// snapshotters use (sim.SortedKeys).
package maporder

import (
	"sort"

	"dcsctrl/internal/sim/snap"
)

type qpState struct {
	sqHead int
	cqTail int
}

// saveQPsUnsorted encodes queue pairs in map order: two snapshots of
// the same simulation produce different checkpoint bytes, and the
// restore overlay applies them in a different order.
func saveQPsUnsorted(w *snap.Writer, qps map[uint16]*qpState) {
	w.Int(len(qps))
	for qid, qp := range qps {
		w.U16(qid)       // want `snap codec w\.U16 inside a map range encodes map-keyed state in randomized order`
		w.Int(qp.sqHead) // want `snap codec w\.Int inside a map range`
		w.Int(qp.cqTail) // want `snap codec w\.Int inside a map range`
	}
}

// saveQPsSorted is the canonical collect/sort/index encode:
// deterministic bytes no matter the map's insertion history.
func saveQPsSorted(w *snap.Writer, qps map[uint16]*qpState) {
	qids := make([]uint16, 0, len(qps))
	for qid := range qps {
		qids = append(qids, qid)
	}
	sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
	w.Int(len(qids))
	for _, qid := range qids {
		qp := qps[qid]
		w.U16(qid)
		w.Int(qp.sqHead)
		w.Int(qp.cqTail)
	}
}

// saveFlashUnsorted streams flash blocks in map order — same bug
// through a different encode method.
func saveFlashUnsorted(w *snap.Writer, flash map[uint64][]byte) {
	w.Int(len(flash))
	for lba, blk := range flash {
		w.U64(lba)   // want `snap codec w\.U64 inside a map range encodes map-keyed state in randomized order`
		w.Bytes(blk) // want `snap codec w\.Bytes inside a map range`
	}
}

// saveFlashSorted collects LBAs, sorts, and indexes back into the map
// while encoding.
func saveFlashSorted(w *snap.Writer, flash map[uint64][]byte) {
	lbas := make([]uint64, 0, len(flash))
	for lba := range flash {
		lbas = append(lbas, lba)
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
	w.Int(len(lbas))
	for _, lba := range lbas {
		w.U64(lba)
		w.Bytes(flash[lba])
	}
}

// loadFlash decodes what saveFlashSorted wrote. Decoding never ranges
// a map, so there is nothing for the analyzer here — it exists so the
// fixture round-trips conceptually.
func loadFlash(r *snap.Reader) map[uint64][]byte {
	n := r.Int()
	flash := make(map[uint64][]byte, n)
	for i := 0; i < n; i++ {
		lba := r.U64()
		flash[lba] = r.Bytes()
	}
	return flash
}
