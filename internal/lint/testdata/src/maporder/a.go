// maporder cases over plain maps: output, appends, accumulators.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func emitsOutput(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside a map range emits output in randomized order`
	}
}

func buildsString(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `b\.WriteString inside a map range accumulates output`
	}
	return b.String()
}

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside a map range records randomized iteration order`
	}
	return keys
}

// The canonical collect/sort/index idiom must NOT be flagged.
func collectSortIndex(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sort.Slice with a comparator counts as sorting too.
func collectSortSlice(m map[int]string) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Integer sums are exact and commutative: fine in any order.
func intSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func floatSum(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v // want `floating-point addition`
	}
	return s
}

func stringConcat(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want `string concatenation`
	}
	return out
}

func divides(m map[string]int) int {
	q := 1 << 30
	for _, v := range m {
		q /= v // want `division/remainder`
	}
	return q
}

func sends(m map[string]int, ch chan<- int) {
	for _, v := range m {
		ch <- v // want `channel send inside a map range`
	}
}

// Accumulating under the loop key is per-key and order-independent.
func keyedAccumulate(src, acc map[string]float64) {
	for k, v := range src {
		acc[k] += v
	}
}

// Building another map keyed by the loop variable commutes.
func buildMap(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Per-iteration locals cannot leak iteration order.
func perIterationLocal(m map[string]int) {
	for k := range m {
		var b strings.Builder
		b.WriteString(k)
		_ = b.String()
	}
}

// Ranging over a slice is ordered; nothing to flag.
func sliceRange(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}

// Deleting the visited key commutes.
func clear(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

func allowedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //dcslint:allow maporder caller sorts before use; see pairing in report.go
	}
	return keys
}
