// maporder cases involving the DES kernel: scheduling from inside a
// map range stamps randomized order into the event queue.
package maporder

import (
	"sort"

	"dcsctrl/internal/sim"
)

func schedules(e *sim.Env, m map[string]sim.Time) {
	for _, d := range m {
		e.Schedule(d, func() {}) // want `call into the DES kernel \(sim\.Schedule\) inside a map range`
	}
}

// Sorting the keys first, then scheduling from the sorted slice, is
// the fix and must pass.
func sortedThenSchedule(e *sim.Env, m map[string]sim.Time) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.Schedule(m[k], func() {})
	}
}
