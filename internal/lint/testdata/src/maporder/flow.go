// Flow-segment-shaped cases: per-flow state lives in maps keyed by
// connection tuple, and a demotion sweep that ranges such a map must
// not let Go's randomized iteration order leak into the simulation
// timeline. The flagged lines are deliberately wrong; their
// expectation comments are the golden.
package maporder

import "sort"

type flowPhase int

type flowKey struct{ src, dst uint64 }

// demoteAllUnsorted drains per-flow state in map order: the demotion
// events would land in a different order every run.
func demoteAllUnsorted(flows map[flowKey]flowPhase) []flowKey {
	var demoted []flowKey
	for k := range flows {
		demoted = append(demoted, k) // want `append to "demoted" inside a map range records randomized iteration order`
	}
	return demoted
}

// demoteAllSorted is the legal spelling: collect, sort by a total
// order on the key, then act.
func demoteAllSorted(flows map[flowKey]flowPhase) []flowKey {
	keys := make([]flowKey, 0, len(flows))
	for k := range flows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	return keys
}
