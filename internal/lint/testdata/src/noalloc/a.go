// noalloc cases: functions marked //dcslint:hotpath must be
// transitively allocation-free. Reachable allocation constructs and
// unprovable calls are flagged with the full call chain; panic
// arguments, directly returned error constructions, known-clean
// externals, and //dcslint:allow'd sites are exempt.
package noalloc

import (
	"encoding/binary"
	"fmt"
)

type frame struct{ data []byte }

type ring struct {
	buf   []frame
	stats map[int]int
}

// RxFastPath is the seeded-mutation shape from the acceptance
// criteria: a receive fast path whose helper grew an append.
//
//dcslint:hotpath nic_frame_echo
func (r *ring) RxFastPath(f frame) {
	r.deliver(f)
}

func (r *ring) deliver(f frame) {
	r.buf = append(r.buf, f) // want `allocation on hot path \(\*noalloc\.ring\)\.RxFastPath: append may grow its backing array \[\(\*noalloc\.ring\)\.RxFastPath → \(\*noalloc\.ring\)\.deliver\]`
}

//dcslint:hotpath
func makes() {
	_ = make([]byte, 64)    // want `allocation on hot path noalloc\.makes: make`
	_ = []int{1, 2}         // want `slice literal`
	_ = map[string]int{}    // want `map literal`
}

//dcslint:hotpath
func news() *ring {
	return &ring{} // want `new \(address of composite literal\)`
}

//dcslint:hotpath
func closes(n int) func() int {
	return func() int { return n } // want `capturing closure \(captures n\)`
}

//dcslint:hotpath
func strings(b []byte, a, c string) string {
	s := string(b) // want `string conversion`
	t := a + c     // want `string concatenation`
	return s + t   // want `string concatenation`
}

//dcslint:hotpath
func logs(v int) {
	fmt.Println(v) // want `interface boxing \(int\)` `calls fmt\.Println: external function not provably allocation-free`
}

//dcslint:hotpath
func spawns() {
	go nop() // want `go statement`
}

func nop() {}

//dcslint:hotpath
func methodValue(r *ring) func(frame) {
	return r.deliver // want `method value \(binds its receiver\) \(deliver\)`
}

type handler interface{ handle() }

//dcslint:hotpath
func dynIface(h handler) {
	h.handle() // want `cannot prove hot path noalloc\.dynIface allocation-free: interface method call handle`
}

//dcslint:hotpath
func dynFunc(f func()) {
	f() // want `call through a func value`
}

// Exempt shapes: the crash path and the directly returned error
// construction are cold by construction.

//dcslint:hotpath
func crashes(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // ok: panic argument subtree
	}
}

//dcslint:hotpath
func coldError(n int) error {
	if n < 0 {
		return fmt.Errorf("bad n %d", n) // ok: error constructed in return
	}
	return nil
}

//dcslint:hotpath
func codec(b []byte, v uint16) {
	binary.LittleEndian.PutUint16(b, v) // ok: known-clean external
}

//dcslint:hotpath
func allowedAppend(dst []int, v int) []int {
	//dcslint:allow noalloc caller preserves capacity across calls
	return append(dst, v) // ok: escape hatch with documented reason
}

// Two roots reaching one site report it once, from the first root in
// source order.

//dcslint:hotpath
func rootA() { sharedLeaf() }

//dcslint:hotpath
func rootB() { sharedLeaf() }

func sharedLeaf() {
	_ = make([]int, 1) // want `allocation on hot path noalloc\.rootA: make \[noalloc\.rootA → noalloc\.sharedLeaf\]`
}

//dcslint:hotpath // want `dangling //dcslint:hotpath`
var notAFunction = 0
