// shardsafe cases: state reachable from one shard domain's sim.Env
// must not be mutably reachable from another. Package-level variables
// written from simulated-timeline code (proc bodies and everything
// they call) and shard.Kernel.AddNode sinks that capture state from
// outside the per-node wiring loop are both cross-domain races under
// the conservative-parallel kernel.
package shardsafe

import (
	"dcsctrl/internal/sim"
	"dcsctrl/internal/sim/shard"
)

// The seeded mutation from the acceptance criteria: a proc body
// incrementing a package-level map.
var opCounts = map[int]int{}

var totalOps int

var diag int

func model(env *sim.Env, id int) {
	env.Spawn("model", func(p *sim.Proc) {
		opCounts[id]++ // want `package-level variable shardsafe\.opCounts incremented from simulated-timeline code`
	})
}

// A write two calls deep is found through the call graph, with the
// chain in the diagnostic.
func bump() {
	totalOps++ // want `package-level variable shardsafe\.totalOps incremented from simulated-timeline code: shard domains share it without synchronization \[func literal → shardsafe\.bump\]`
}

func spawnIndirect(env *sim.Env) {
	env.Spawn("indirect", func(p *sim.Proc) {
		bump()
	})
}

// The escape hatch documents deliberate single-domain instrumentation.
func spawnAllowed(env *sim.Env) {
	env.Spawn("allowed", func(p *sim.Proc) {
		//dcslint:allow shardsafe single-domain debug rig, never run under the shard kernel
		diag++
	})
}

// Locals captured by a proc are that proc's own state: fine.
func spawnLocal(env *sim.Env) {
	count := 0
	env.Spawn("local", func(p *sim.Proc) {
		count++
	})
}

type node struct{ seen int }

func (n *node) inject(frame []byte) { n.seen++ }

func drop(frame []byte) {}

// Per-node wiring: sinks may only reference state created in the
// loop iteration that registers them.
func wire(k *shard.Kernel, domains []*shard.Domain, nodes []*node) {
	var stray *node
	for i := range nodes {
		d := domains[i%len(domains)]
		local := nodes[i]
		k.AddNode(i, d, func(frame []byte) { local.inject(frame) }) // ok: loop-local capture
		k.AddNode(i, d, local.inject)                               // ok: loop-local receiver
		k.AddNode(i, d, drop)                                       // ok: package-level func binds nothing
		k.AddNode(i, d, func(frame []byte) { stray.inject(frame) }) // want `shard sink captures "stray" declared outside the per-node wiring loop: cross-domain pointer capture`
	}
	_ = stray
}

// A method-value sink bound to a receiver hoisted out of the loop
// aliases that receiver into every domain.
func wireShared(k *shard.Kernel, domains []*shard.Domain, n0 *node) {
	for i := 0; i < 4; i++ {
		k.AddNode(i, domains[0], n0.inject) // want `shard sink binds receiver "n0" declared outside the per-node wiring loop: cross-domain pointer capture`
	}
}

// The escape hatch covers deliberately shared read-only sinks.
func wireAllowed(k *shard.Kernel, domains []*shard.Domain, sink *node) {
	for i := 0; i < 4; i++ {
		//dcslint:allow shardsafe shared metrics sink is append-only and merged at the barrier
		k.AddNode(i, domains[0], sink.inject)
	}
}
