// Escape-hatch cases: a justified //dcslint:allow suppresses exactly
// its named analyzer on its line (trailing) or the line below
// (standalone); anything else still fires, and malformed directives
// are diagnostics in their own right.
package nowallclock

import "time"

func allowedTrailing() time.Time {
	return time.Now() //dcslint:allow nowallclock host-side startup banner, never on the simulated timeline
}

func allowedAbove() {
	//dcslint:allow nowallclock yielding to the OS scheduler in a manual stress harness
	time.Sleep(time.Millisecond)
}

func wrongAnalyzerDoesNotSuppress() time.Time {
	return time.Now() //dcslint:allow maporder wrong analyzer name // want `time\.Now reads the wall clock`
}

func malformedDirectives() {
	//dcslint:allow nosuchanalyzer missing from the suite // want `malformed directive`
}
