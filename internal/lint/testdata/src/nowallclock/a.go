// Positive cases: wall-clock reads and global math/rand draws that
// nowallclock must flag in simulation packages.
package nowallclock

import (
	clock "time"
	"math/rand"
	"time"
)

func wallClock() {
	start := time.Now() // want `time\.Now reads the wall clock`
	_ = time.Since(start) // want `time\.Since reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	_ = time.After(time.Second) // want `time\.After reads the wall clock`
	_ = time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
	_ = clock.Now() // want `time\.Now reads the wall clock`
}

func globalRand() {
	_ = rand.Intn(10) // want `rand\.Intn uses the process-global PRNG`
	_ = rand.Int63() // want `rand\.Int63 uses the process-global PRNG`
	_ = rand.Float64() // want `rand\.Float64 uses the process-global PRNG`
	rand.Shuffle(4, func(i, j int) {}) // want `rand\.Shuffle uses the process-global PRNG`
	_ = rand.Perm(8) // want `rand\.Perm uses the process-global PRNG`
}
