// Flow-segment-shaped cases: segment bookkeeping must never stamp or
// pace itself off the host's wall clock — all flow timing comes from
// the simulated clock. The flagged lines are deliberately wrong;
// their expectation comments are the golden.
package nowallclock

import (
	"math/rand"
	"time"
)

type flowSegment struct {
	frames  int
	started time.Time
}

// beginSegment stamps an analytic segment with the wall clock.
func beginSegment(frames int) flowSegment {
	return flowSegment{
		frames:  frames,
		started: time.Now(), // want `time\.Now reads the wall clock`
	}
}

// jitterSegment draws crossover jitter from the process-global PRNG.
func jitterSegment(s *flowSegment) {
	s.frames += rand.Intn(2) // want `rand\.Intn uses the process-global PRNG`
}
