// Negative cases: explicitly seeded randomness and pure time-value
// arithmetic are fine — only the wall clock and the process-global
// PRNG break replay.
package nowallclock

import (
	"math/rand"
	"time"
)

func seededRand() int {
	r := rand.New(rand.NewSource(42))
	z := rand.NewZipf(r, 1.1, 1, 1<<20)
	return r.Intn(10) + int(z.Uint64())
}

func timeValues() time.Duration {
	d := 3 * time.Millisecond
	t := time.Unix(0, 0).Add(d)
	_ = t.UnixNano()
	return d + time.Duration(500)*time.Microsecond
}
