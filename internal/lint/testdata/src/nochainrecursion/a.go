// nochainrecursion cases: continuations handed to sim.Env.Chain run
// inline on the caller's Go stack when the instant is otherwise idle,
// so a continuation that re-enters Chain recurses until the kernel's
// depth guard panics. Leaf continuations and Schedule-driven repeats
// stay legal.
package nochainrecursion

import "dcsctrl/internal/sim"

func nested(env *sim.Env) {
	env.Chain(func() {
		env.Chain(nop) // want `Env\.Chain inside a chained continuation`
	})
}

type dev struct {
	env *sim.Env
}

func (d *dev) kick() {
	d.env.Chain(d.kick) // want `continuation chains itself`
}

func viaBinding(env *sim.Env) {
	var loop func()
	loop = func() { env.Chain(loop) } // want `chains itself through its own binding`
	env.Schedule(0, loop)
}

func fine(env *sim.Env) {
	env.Chain(nop)           // leaf continuation
	env.Chain(func() { nop() })
	f := func() {}
	env.Chain(f) // opaque binding, no self-reference
	env.Schedule(0, func() { env.Chain(nop) }) // scheduled, not chained
}

func allowed(env *sim.Env) {
	var loop func()
	loop = func() { env.Chain(loop) } //dcslint:allow nochainrecursion deliberate runaway for a depth-guard fixture
	env.Schedule(0, loop)
}

func nop() {}
