package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Escape-hatch directive:
//
//	//dcslint:allow <analyzer> <reason>
//
// placed either at the end of the offending line or on its own line
// directly above it. The analyzer name must be one of the suite's and
// the reason must be non-empty — an allow without a "why" is exactly
// the undocumented convention dcslint exists to replace. Malformed
// directives are themselves diagnostics.

const directivePrefix = "//dcslint:"

// allowSet records, per file and line, which analyzers are suppressed.
type allowSet map[string]map[int]map[string]bool

// parseAllows scans the comments of files for dcslint directives.
// A directive on line L suppresses matching diagnostics on L (trailing
// comment), L+1 (standalone comment above the code), and — when the
// directive sits inside a multi-line comment group — the line after
// the whole group, so an allow woven into a doc comment attaches to
// the declaration it documents rather than to the next comment line.
func parseAllows(fset *token.FileSet, files []*ast.File) (allowSet, []Diagnostic) {
	allows := allowSet{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			groupEnd := fset.Position(cg.End()).Line
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				if _, isHotpath := parseHotpath(c); isHotpath {
					continue // noalloc's root marker, parsed by the facts layer
				}
				name, ok := parseDirective(c.Text)
				if !ok {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "dcslint",
						Message: "malformed directive: want //dcslint:allow <analyzer> <reason> " +
							"with a known analyzer and a non-empty reason",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				m := allows[pos.Filename]
				if m == nil {
					m = map[int]map[string]bool{}
					allows[pos.Filename] = m
				}
				for _, line := range []int{pos.Line, pos.Line + 1, groupEnd + 1} {
					if m[line] == nil {
						m[line] = map[string]bool{}
					}
					m[line][name] = true
				}
			}
		}
	}
	return allows, bad
}

// parseDirective validates one //dcslint: comment, returning the
// analyzer name it suppresses.
func parseDirective(text string) (analyzer string, ok bool) {
	rest, found := strings.CutPrefix(text, directivePrefix+"allow")
	if !found {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 { // analyzer + at least one reason word
		return "", false
	}
	if !knownAnalyzer(fields[0]) {
		return "", false
	}
	return fields[0], true
}

// allowed reports whether a diagnostic from analyzer at pos is
// suppressed by a directive.
func (a allowSet) allowed(pos token.Position, analyzer string) bool {
	return a[pos.Filename][pos.Line][analyzer]
}

// merge folds other into a (filenames are disjoint across packages,
// but merging line maps keeps this safe regardless).
func (a allowSet) merge(other allowSet) {
	for file, lines := range other {
		m := a[file]
		if m == nil {
			a[file] = lines
			continue
		}
		for line, names := range lines {
			if m[line] == nil {
				m[line] = names
				continue
			}
			for name := range names {
				m[line][name] = true
			}
		}
	}
}
