package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"dcsctrl/internal/lint"
	"dcsctrl/internal/lint/analysistest"
)

func TestNoWallClock(t *testing.T) {
	analysistest.Run(t, lint.NoWallClock, filepath.Join("testdata", "src", "nowallclock"))
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, lint.MapOrder, filepath.Join("testdata", "src", "maporder"))
}

func TestNoGoroutine(t *testing.T) {
	analysistest.Run(t, lint.NoGoroutine, filepath.Join("testdata", "src", "nogoroutine"))
}

func TestNoChainRecursion(t *testing.T) {
	analysistest.Run(t, lint.NoChainRecursion, filepath.Join("testdata", "src", "nochainrecursion"))
}

func TestSimTime(t *testing.T) {
	analysistest.Run(t, lint.SimTime, filepath.Join("testdata", "src", "simtime"))
}

func TestNoAlloc(t *testing.T) {
	analysistest.RunModule(t, lint.NoAlloc, filepath.Join("testdata", "src", "noalloc"))
}

func TestShardSafe(t *testing.T) {
	analysistest.RunModule(t, lint.ShardSafe, filepath.Join("testdata", "src", "shardsafe"))
}

func TestNoBlockHandler(t *testing.T) {
	// The kernel package joins the facts set: park-capability is
	// reverse reachability from (*sim.Proc).park, which needs the
	// kernel's own bodies, not just its API surface.
	analysistest.RunModule(t, lint.NoBlockHandler,
		filepath.Join("testdata", "src", "noblockhandler"), "dcsctrl/internal/sim")
}

// TestRepoIsClean is the property CI enforces: the whole module passes
// the suite with zero findings. A regression here means either new
// code broke a determinism invariant or an analyzer grew a false
// positive — both need fixing before merge.
func TestRepoIsClean(t *testing.T) {
	findings, err := lint.Run("", "dcsctrl/...")
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// The suite must report the analyzer name and a concrete fix in every
// diagnostic — that is what makes a CI failure actionable.
func TestDiagnosticsNameAnalyzerAndFix(t *testing.T) {
	for _, a := range lint.Analyzers() {
		if a.Name == "" || strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q must be a single lower-case word", a.Name)
		}
		if !strings.Contains(a.Doc, "\n\n") {
			t.Errorf("%s: Doc needs a summary line plus explanation", a.Name)
		}
	}
	for _, ma := range lint.ModuleAnalyzers() {
		if ma.Name == "" || strings.ContainsAny(ma.Name, " \t") {
			t.Errorf("analyzer name %q must be a single lower-case word", ma.Name)
		}
		if !strings.Contains(ma.Doc, "\n\n") {
			t.Errorf("%s: Doc needs a summary line plus explanation", ma.Name)
		}
	}
}
