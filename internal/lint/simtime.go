package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// SimTime flags raw integer literals mixed into sim.Time arithmetic.
// sim.Time is nanoseconds, but `t + 1500` does not say so — the next
// reader cannot tell 1.5µs from a typo'd 1.5ms, and unit bugs of
// exactly this shape shift event order without failing any type
// check. Durations must be built from the kernel's unit constants
// (3*sim.Microsecond) or named sim.Time values. Scalar scaling
// (t*2, t/4) and the zero value are fine; comparing or offsetting
// against a bare nonzero literal is not.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc: "forbid raw integer literals in sim.Time arithmetic and comparisons\n\n" +
		"Build durations from the kernel's unit constants " +
		"(sim.Nanosecond/Microsecond/Millisecond/Second) so every " +
		"timestamp's unit is visible at the use site.",
	Run: runSimTime,
}

func runSimTime(pass *Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB,
					token.LSS, token.LEQ, token.GTR, token.GEQ,
					token.EQL, token.NEQ:
					checkSimTimePair(pass, n.X, n.Y, n.Op)
				}
			case *ast.AssignStmt:
				if len(n.Lhs) == 1 && len(n.Rhs) == 1 &&
					(n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN) {
					checkSimTimePair(pass, n.Lhs[0], n.Rhs[0], n.Tok)
				}
			case *ast.CallExpr:
				// Conversion sim.Time(1500): a raw nanosecond count.
				if len(n.Args) != 1 {
					return true
				}
				tv, ok := info.Types[n.Fun]
				if !ok || !tv.IsType() || !isSimType(tv.Type, "Time") {
					return true
				}
				if lit, val := rawIntLiteral(info, n.Args[0]); lit != nil && constant.Sign(val) != 0 {
					pass.Reportf(n.Pos(),
						"sim.Time(%s) hides the unit; build durations from the kernel's "+
							"unit constants (e.g. %s*sim.Nanosecond)", lit.Value, lit.Value)
				}
			}
			return true
		})
	}
	return nil
}

// checkSimTimePair reports if one of (x, y) is a sim.Time expression
// and the other a bare nonzero integer literal.
func checkSimTimePair(pass *Pass, x, y ast.Expr, op token.Token) {
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		timeSide, litSide := pair[0], pair[1]
		tv, ok := pass.TypesInfo.Types[timeSide]
		if !ok || !isSimType(tv.Type, "Time") {
			continue
		}
		// The time side must not itself be a literal (both sides
		// literal means no sim.Time expression is involved).
		if lit, _ := rawIntLiteral(pass.TypesInfo, timeSide); lit != nil {
			continue
		}
		lit, val := rawIntLiteral(pass.TypesInfo, litSide)
		if lit == nil || constant.Sign(val) == 0 {
			continue
		}
		pass.Reportf(lit.Pos(),
			"raw integer literal %s used with sim.Time in %q hides the unit; use the "+
				"kernel's unit constants (e.g. %s*sim.Nanosecond) or a named sim.Time value",
			lit.Value, op.String(), lit.Value)
		return
	}
}

// rawIntLiteral returns the integer literal underlying e (through
// parens and unary +/-) and its constant value, or nil if e is not a
// bare literal.
func rawIntLiteral(info *types.Info, e ast.Expr) (*ast.BasicLit, constant.Value) {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.ADD && v.Op != token.SUB {
				return nil, nil
			}
			e = v.X
		case *ast.BasicLit:
			if v.Kind != token.INT {
				return nil, nil
			}
			tv, ok := info.Types[v]
			if !ok || tv.Value == nil {
				return nil, nil
			}
			return v, tv.Value
		default:
			return nil, nil
		}
	}
}
