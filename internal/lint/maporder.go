package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map whose body leaks the (randomized)
// iteration order into observable state: emitting output, appending
// to a slice that is never sorted, scheduling simulated events, or
// feeding a non-commutative accumulator. Go deliberately randomizes
// map iteration, so any of these makes two runs of the same
// experiment diverge. The canonical fix is the collect/sort/index
// idiom:
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//	    keys = append(keys, k)
//	}
//	sort.Slice(keys, ...)        // or sort.Strings / slices.Sort
//	for _, k := range keys { ... use m[k] ... }
//
// which the analyzer recognises and does not flag. Purely commutative
// bodies — integer sums, building another map keyed by the loop
// variable, per-key deletes — are also fine.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid map-range bodies that leak Go's randomized iteration order\n\n" +
		"Output, unsorted slice appends, event scheduling, and " +
		"non-commutative accumulation inside a map range make replay " +
		"nondeterministic; iterate a sorted key slice instead.",
	Run: runMapOrder,
}

const mapOrderFix = "iterate a sorted key slice instead (collect keys, sort, index the map)"

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkMapRanges inspects the map-range statements belonging directly
// to this function body. Nested function literals are skipped here;
// the outer Inspect visits them as functions in their own right.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, rng, body)
		return true
	})
}

// checkMapRangeBody classifies the body of one map-range statement
// and reports the first order-leaking construct found.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, funcBody *ast.BlockStmt) {
	info := pass.TypesInfo
	loopVars := rangeLoopVars(info, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil {
				if fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") ||
					strings.HasPrefix(fn.Name(), "Fprint")) {
					pass.Reportf(n.Pos(),
						"fmt.%s inside a map range emits output in randomized order; %s",
						fn.Name(), mapOrderFix)
					return true
				}
				if fn.Pkg().Path() == SimKernelPath {
					pass.Reportf(n.Pos(),
						"call into the DES kernel (%s.%s) inside a map range schedules "+
							"events in randomized order; %s",
						fn.Pkg().Name(), fn.Name(), mapOrderFix)
					return true
				}
			}
			checkWriterCall(pass, rng, n)
		case *ast.AssignStmt:
			checkRangeAssign(pass, rng, funcBody, loopVars, n)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside a map range publishes values in randomized order; %s",
				mapOrderFix)
		}
		return true
	})
}

// checkWriterCall flags method calls inside a map range that append
// to position-significant output owned outside the loop: the
// Write/WriteString/... family (strings.Builder, bytes.Buffer,
// io.Writer) and every encode method of the checkpoint codec's
// snap.Writer. Each iteration appends to shared output, so the order
// of iterations is the order of the output — for the snap codec that
// means the snapshot bytes themselves become schedule lottery.
func checkWriterCall(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pass.TypesInfo, call)
	snapCodec := fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == SnapCodecPath &&
		recvTypeName(fn) == "Writer"
	if !snapCodec {
		switch sel.Sel.Name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
		default:
			return
		}
	}
	if _, isMethod := pass.TypesInfo.Selections[sel]; !isMethod {
		return
	}
	obj := baseObject(pass.TypesInfo, sel.X)
	if obj == nil || declaredWithin(obj, rng) {
		return
	}
	if snapCodec {
		pass.Reportf(call.Pos(),
			"snap codec %s.%s inside a map range encodes map-keyed state in randomized "+
				"order, so the snapshot bytes differ run to run; %s",
			obj.Name(), sel.Sel.Name, mapOrderFix)
		return
	}
	pass.Reportf(call.Pos(),
		"%s.%s inside a map range accumulates output in randomized order; %s",
		obj.Name(), sel.Sel.Name, mapOrderFix)
}

// checkRangeAssign flags appends to outer slices that are never
// sorted afterwards, and non-commutative compound assignments to
// outer accumulators.
func checkRangeAssign(pass *Pass, rng *ast.RangeStmt, funcBody *ast.BlockStmt, loopVars []types.Object, assign *ast.AssignStmt) {
	info := pass.TypesInfo
	for i, rhs := range assign.Rhs {
		if i >= len(assign.Lhs) {
			break
		}
		lhs := assign.Lhs[i]
		// append to a slice declared outside the loop
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
			obj := baseObject(info, lhs)
			if obj == nil || declaredWithin(obj, rng) {
				continue
			}
			if sortedAfter(pass, funcBody, rng, obj) {
				continue
			}
			pass.Reportf(assign.Pos(),
				"append to %q inside a map range records randomized iteration order "+
					"and %q is never sorted afterwards; sort it before use, or %s",
				obj.Name(), obj.Name(), mapOrderFix)
		}
	}
	if len(assign.Lhs) != 1 {
		return
	}
	lhs := assign.Lhs[0]
	obj := baseObject(info, lhs)
	if obj == nil || declaredWithin(obj, rng) {
		return
	}
	// Accumulation keyed by the loop variable (counts[k] += v) is
	// per-key and therefore commutative across iteration orders.
	if indexUsesLoopVar(info, lhs, loopVars) {
		return
	}
	tv, ok := info.Types[lhs]
	if !ok || tv.Type == nil {
		return
	}
	if reason := nonCommutative(assign.Tok, tv.Type); reason != "" {
		pass.Reportf(assign.Pos(),
			"%s accumulation into %q inside a map range is %s, so the result "+
				"depends on randomized iteration order; %s",
			assign.Tok, obj.Name(), reason, mapOrderFix)
	}
}

// nonCommutative classifies a compound assignment: which (op, element
// type) pairs give results that depend on evaluation order. Integer
// +=, -=, *=, |=, &=, ^= are exact and commutative; floating-point
// arithmetic is non-associative, string += is concatenation, and
// division/shift/clear depend on operand order outright.
func nonCommutative(tok token.Token, t types.Type) string {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	fp := basic.Info()&(types.IsFloat|types.IsComplex) != 0
	switch tok {
	case token.ADD_ASSIGN:
		if basic.Info()&types.IsString != 0 {
			return "string concatenation"
		}
		if fp {
			return "floating-point addition (non-associative)"
		}
	case token.SUB_ASSIGN, token.MUL_ASSIGN:
		if fp {
			return "floating-point arithmetic (non-associative)"
		}
	case token.QUO_ASSIGN, token.REM_ASSIGN:
		return "division/remainder (order-dependent)"
	case token.SHL_ASSIGN, token.SHR_ASSIGN:
		return "a shift (order-dependent)"
	case token.AND_NOT_ASSIGN:
		return "bit-clear (order-dependent)"
	}
	return ""
}

// sortedAfter reports whether obj is passed to a sort.* or slices.*
// call somewhere after the range statement in the enclosing function
// body — the collect/sort/index idiom.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if baseObject(pass.TypesInfo, arg) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// rangeLoopVars returns the objects of the key/value variables bound
// by the range statement (nil entries skipped).
func rangeLoopVars(info *types.Info, rng *ast.RangeStmt) []types.Object {
	var vars []types.Object
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				vars = append(vars, obj)
			} else if obj := info.Uses[id]; obj != nil { // `=` form
				vars = append(vars, obj)
			}
		}
	}
	return vars
}

// indexUsesLoopVar reports whether lhs is an index expression whose
// index mentions one of the loop variables.
func indexUsesLoopVar(info *types.Info, lhs ast.Expr, loopVars []types.Object) bool {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	uses := false
	ast.Inspect(idx.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := info.Uses[id]
			for _, lv := range loopVars {
				if obj == lv {
					uses = true
				}
			}
		}
		return !uses
	})
	return uses
}

// baseObject resolves the root identifier of an lvalue-ish expression
// (x, x.f, x[i], *x, combinations) to its object.
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside the
// range statement (per-iteration state cannot leak order).
func declaredWithin(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

// isBuiltin reports whether call invokes the named universe builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
