package lint

import "strings"

// ModulePath is the module all linted packages live in.
const ModulePath = "dcsctrl"

// SimKernelPath is the DES kernel package — the one place goroutines
// and channels are allowed, and the home of the sim.Time type.
const SimKernelPath = ModulePath + "/internal/sim"

// SnapCodecPath is the checkpoint codec package. Its Writer appends
// to a position-significant byte stream, so every encode call made
// while ranging a map leaks the randomized iteration order straight
// into the snapshot bytes — and snapshot bytes must be identical run
// to run (DESIGN.md §17).
const SnapCodecPath = SimKernelPath + "/snap"

// ShardKernelPath is the conservative-parallel shard kernel. It is
// kernel infrastructure, not model code: its worker pool dispatches
// whole domains between lookahead barriers, and its determinism is
// enforced by the parallel-equivalence suite (byte-identical
// fingerprints at every worker count), not by the goroutine ban.
const ShardKernelPath = SimKernelPath + "/shard"

// simPackages are the simulation-model packages where every
// determinism invariant is load-bearing: their code runs on the
// simulated timeline and feeds golden figures and fault fingerprints.
var simPackages = []string{
	"internal/sim",
	"internal/core",
	"internal/hdc",
	"internal/nvme",
	"internal/nic",
	"internal/pcie",
	"internal/ether",
	"internal/fault",
	"internal/workload",
	"internal/hostos",
	"internal/gpu",
	"internal/ndp",
	"internal/fpga",
	"internal/mem",
	"internal/apps",
}

// hostPackages are host-side measurement and tooling code: they may
// read the wall clock (perf timing) and spawn goroutines (the
// parallel experiment pool), because nothing on the simulated
// timeline depends on them.
var hostPackages = []string{
	"internal/bench",
	"internal/report",
	"internal/trace",
	"cmd/", // cmd/* — all binaries
	"examples/",
}

// orderExempt are the packages even maporder/simtime skip: pure
// driver/tooling code whose output never feeds a golden file.
// Reporting and trace code stay covered — their output IS the golden
// data.
var orderExempt = []string{
	"internal/bench",
	"cmd/",
	"examples/",
}

func inList(pkgPath string, list []string) bool {
	rel, ok := strings.CutPrefix(pkgPath, ModulePath+"/")
	if !ok {
		// The module root package itself ("dcsctrl").
		rel = ""
		if pkgPath != ModulePath {
			return false
		}
	}
	for _, p := range list {
		if rel == p || strings.HasPrefix(rel, p+"/") ||
			(strings.HasSuffix(p, "/") && strings.HasPrefix(rel, p)) {
			return true
		}
	}
	return false
}

// IsSimPackage reports whether pkgPath is simulation-model code.
func IsSimPackage(pkgPath string) bool { return inList(pkgPath, simPackages) }

// IsHostPackage reports whether pkgPath is allowlisted host-side code.
func IsHostPackage(pkgPath string) bool { return inList(pkgPath, hostPackages) }

// Applies reports whether analyzer a should run over pkgPath.
//
//   - nowallclock: simulation packages only — bench/report/cmd
//     legitimately time real execution.
//   - nogoroutine: simulation packages except the kernel itself and
//     the shard kernel, which own all concurrency.
//   - nochainrecursion: all simulation packages including the kernel —
//     a self-chaining continuation is a stack bomb wherever it lives.
//   - maporder and simtime: everywhere in the module except
//     allowlisted host packages — reporting and facade code feed
//     golden output too, and sim.Time hygiene is global.
func Applies(a *Analyzer, pkgPath string) bool {
	if !strings.HasPrefix(pkgPath, ModulePath) {
		return false
	}
	switch a.Name {
	case "nowallclock":
		return IsSimPackage(pkgPath)
	case "nogoroutine":
		return IsSimPackage(pkgPath) && pkgPath != SimKernelPath && pkgPath != ShardKernelPath
	case "nochainrecursion":
		return IsSimPackage(pkgPath)
	case "maporder", "simtime":
		return !inList(pkgPath, orderExempt)
	}
	return true
}

// Analyzers returns the per-package dcslint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NoWallClock, MapOrder, NoGoroutine, NoChainRecursion, SimTime}
}

// ModuleAnalyzers returns the whole-module (interprocedural) suite.
// Module analyzers scope themselves — noalloc walks only from
// //dcslint:hotpath roots, shardsafe only from kernel-callback
// registrations — so they have no Applies entry.
func ModuleAnalyzers() []*ModuleAnalyzer {
	return []*ModuleAnalyzer{NoAlloc, ShardSafe, NoBlockHandler}
}

// byName returns the per-package analyzer with the given name, or nil.
func byName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// knownAnalyzer reports whether name identifies any analyzer in the
// suite (per-package or module) — the namespace //dcslint:allow
// directives may target.
func knownAnalyzer(name string) bool {
	if byName(name) != nil {
		return true
	}
	for _, ma := range ModuleAnalyzers() {
		if ma.Name == name {
			return true
		}
	}
	return false
}
