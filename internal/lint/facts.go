package lint

// The facts layer: per-function summaries computed once over every
// loaded module package, shared by the interprocedural analyzers
// (noalloc, shardsafe). A summary records, for one declared function
// or method, every syntactic construct the analyzers care about:
//
//   - allocation sites (make, new, append, slice/map literals,
//     capturing closures, method values, interface boxing, string
//     conversions and concatenation, go statements);
//   - resolved static calls (direct function and concrete-method
//     calls, canonicalized through Origin so generic instantiations
//     share one node);
//   - dynamic calls (interface methods, func-typed values) that no
//     summary can see through — the analyzers treat these
//     conservatively and the escape hatch documents why a given site
//     is safe;
//   - writes to package-level variables (assignment, ++/--, indexed
//     stores, pointer-receiver method calls on a global);
//   - kernel callback registrations (sim.Env.Spawn/Schedule/Chain,
//     mem write hooks, pcie MSI handlers, shard.Kernel.AddNode
//     sinks) — the roots of "runs on the simulated timeline";
//   - the //dcslint:hotpath directive marking a zero-allocation root.
//
// Function literals are flattened into their enclosing declaration's
// summary (a closure created on a hot path is assumed callable from
// it), and additionally summarized standalone when they are
// registered as kernel callbacks, so shardsafe can treat the literal
// itself as a proc body without tainting the encloser.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocKind classifies one allocation site.
type AllocKind int

// Allocation site kinds.
const (
	AllocMake        AllocKind = iota // make(slice/map/chan)
	AllocNew                          // new(T) or &T{...}
	AllocAppend                       // append may grow its backing array
	AllocSliceLit                     // slice composite literal
	AllocMapLit                       // map composite literal
	AllocClosure                      // capturing function literal
	AllocMethodValue                  // method value (binds its receiver)
	AllocBox                          // concrete value boxed into an interface
	AllocString                       // string<->[]byte/[]rune conversion
	AllocConcat                       // non-constant string concatenation
	AllocGoStmt                       // go statement (new goroutine)
)

func (k AllocKind) String() string {
	switch k {
	case AllocMake:
		return "make"
	case AllocNew:
		return "new"
	case AllocAppend:
		return "append may grow its backing array"
	case AllocSliceLit:
		return "slice literal"
	case AllocMapLit:
		return "map literal"
	case AllocClosure:
		return "capturing closure"
	case AllocMethodValue:
		return "method value (binds its receiver)"
	case AllocBox:
		return "interface boxing"
	case AllocString:
		return "string conversion"
	case AllocConcat:
		return "string concatenation"
	case AllocGoStmt:
		return "go statement"
	default:
		return "allocation"
	}
}

// AllocSite is one allocation construct found in a function body.
type AllocSite struct {
	Pos    token.Pos
	Kind   AllocKind
	Detail string // extra context, e.g. the captured variable names
}

// CallSite is one call found in a function body. Callee is non-nil
// for statically resolved calls; dynamic sites carry a description of
// what could not be resolved instead.
type CallSite struct {
	Pos    token.Pos
	Callee *types.Func // canonical (Origin) callee; nil for dynamic
	Desc   string      // for dynamic sites: what kind of call
}

// GlobalWrite is one write to a package-level variable.
type GlobalWrite struct {
	Pos  token.Pos
	Var  *types.Var
	Desc string // how it is written (assigned, ++/--, pointer method)
}

// CallbackKind classifies a kernel callback registration site.
type CallbackKind int

// Callback registration kinds.
const (
	CallbackSpawn    CallbackKind = iota // sim.Env.Spawn process body
	CallbackSchedule                     // sim.Env.Schedule event fn
	CallbackChain                        // sim.Env.Chain continuation
	CallbackHook                         // mem.Region.SetWriteHook
	CallbackMSI                          // pcie.Fabric.OnMSI handler
	CallbackSink                         // shard.Kernel.AddNode delivery sink
	CallbackHandler                      // sim.Env.SpawnHandler handler body
)

func (k CallbackKind) String() string {
	switch k {
	case CallbackSpawn:
		return "sim.Env.Spawn process body"
	case CallbackSchedule:
		return "sim.Env.Schedule callback"
	case CallbackChain:
		return "sim.Env.Chain continuation"
	case CallbackHook:
		return "mem.Region write hook"
	case CallbackMSI:
		return "pcie MSI handler"
	case CallbackSink:
		return "shard.Kernel.AddNode sink"
	case CallbackHandler:
		return "sim.Env.SpawnHandler handler body"
	default:
		return "kernel callback"
	}
}

// Callback is one registration of model code with the kernel: the
// registered function runs on the simulated timeline, so it seeds
// shardsafe's proc-reachability.
type Callback struct {
	Pos  token.Pos
	Kind CallbackKind

	// Exactly one of Target (named function / method value) and Lit
	// (function literal) is set when the argument was resolvable; both
	// nil means the registration passed an opaque func value.
	Target *types.Func
	Lit    *ast.FuncLit

	// For CallbackSink: the AddNode call's domain argument and the
	// innermost for/range statement enclosing the call (nil outside a
	// loop) — the scope shard wiring must keep captures inside.
	DomainArg ast.Expr
	Loop      ast.Stmt
	// ArgExpr is the raw callback argument (for receiver-root checks
	// on method values).
	ArgExpr ast.Expr
}

// Hotpath is a parsed //dcslint:hotpath directive attached to a
// function declaration: the function is a zero-allocation root that
// noalloc proves transitively allocation-free. Benches optionally
// name the BENCH_dataplane.json entries whose allocs_per_op == 0
// promise this root anchors (cmd/benchdiff cross-checks them).
type Hotpath struct {
	Pos     token.Pos
	Benches []string
}

// FuncFacts is the summary of one function declaration (or one
// standalone function literal registered as a kernel callback).
type FuncFacts struct {
	Fn   *types.Func   // nil for standalone literals
	Decl *ast.FuncDecl // nil for standalone literals
	Lit  *ast.FuncLit  // set only for standalone literal summaries
	Pkg  *Package

	Hotpath *Hotpath

	Allocs       []AllocSite
	Calls        []CallSite // statically resolved
	Dynamic      []CallSite // unresolvable call sites
	GlobalWrites []GlobalWrite
	Callbacks    []Callback
}

// Name renders the function's name for diagnostics, e.g.
// "(*pcie.Fabric).DMA" or "mem.NewMap".
func (ff *FuncFacts) Name() string {
	if ff.Fn == nil {
		return "func literal"
	}
	return FuncName(ff.Fn)
}

// FuncName renders fn as pkg.Func or (*pkg.Type).Method.
func FuncName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
		ptr = "*"
	}
	name := "?"
	if named, isNamed := t.(*types.Named); isNamed {
		name = named.Obj().Name()
	}
	return "(" + ptr + pkg + name + ")." + fn.Name()
}

// Facts is the module-wide summary store plus the call-graph index.
type Facts struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Funcs map[*types.Func]*FuncFacts // declared functions by canonical object
	Lits  map[*ast.FuncLit]*FuncFacts
	All   []*FuncFacts // every declared-function summary, in load/source order
	Roots []*FuncFacts // hotpath-annotated, in source order

	// Dangling hotpath directives (not attached to a function
	// declaration) surface as diagnostics.
	BadHotpaths []token.Pos
}

// BuildFacts summarizes every function in pkgs.
func BuildFacts(pkgs []*Package) *Facts {
	f := &Facts{
		Funcs: map[*types.Func]*FuncFacts{},
		Lits:  map[*ast.FuncLit]*FuncFacts{},
		Pkgs:  pkgs,
	}
	if len(pkgs) > 0 {
		f.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			hot, dangling := hotpathDirectives(file)
			f.BadHotpaths = append(f.BadHotpaths, dangling...)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ff := &FuncFacts{Fn: canonical(obj), Decl: fd, Pkg: pkg}
				sum := &summarizer{pkg: pkg, facts: f, out: ff}
				sum.block(fd.Body)
				if hp, ok := hot[fd]; ok {
					ff.Hotpath = hp
					f.Roots = append(f.Roots, ff)
				}
				f.Funcs[ff.Fn] = ff
				f.All = append(f.All, ff)
			}
		}
	}
	return f
}

// Lookup returns the facts for fn (seeing through generic
// instantiation), or nil for functions outside the summarized set.
func (f *Facts) Lookup(fn *types.Func) *FuncFacts {
	if fn == nil {
		return nil
	}
	return f.Funcs[canonical(fn)]
}

// litFacts returns (building on demand) the standalone summary of one
// registered function literal.
func (f *Facts) litFacts(pkg *Package, lit *ast.FuncLit) *FuncFacts {
	if ff, ok := f.Lits[lit]; ok {
		return ff
	}
	ff := &FuncFacts{Pkg: pkg, Lit: lit}
	f.Lits[lit] = ff // memoize before walking: literals can self-reference via recursion
	sum := &summarizer{pkg: pkg, facts: f, out: ff}
	sum.block(lit.Body)
	return ff
}

// hotpathDirectives scans a file's comments for //dcslint:hotpath and
// maps each to the FuncDecl it documents. Directives not attached to
// a function declaration's doc comment are returned as dangling
// positions (in source order) so the mistake is loud instead of a
// silently missing root.
func hotpathDirectives(file *ast.File) (map[*ast.FuncDecl]*Hotpath, []token.Pos) {
	out := map[*ast.FuncDecl]*Hotpath{}
	claimed := map[*ast.Comment]bool{}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if hp, ok := parseHotpath(c); ok {
				out[fd] = hp
				claimed[c] = true
			}
		}
	}
	var dangling []token.Pos
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if _, ok := parseHotpath(c); ok && !claimed[c] {
				dangling = append(dangling, c.Pos())
			}
		}
	}
	return out, dangling
}

// parseHotpath parses one //dcslint:hotpath comment.
func parseHotpath(c *ast.Comment) (*Hotpath, bool) {
	rest, found := strings.CutPrefix(c.Text, directivePrefix+"hotpath")
	if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, false
	}
	return &Hotpath{Pos: c.Pos(), Benches: strings.Fields(rest)}, true
}

// canonical maps a (possibly instantiated) function object to its
// generic origin so every instantiation shares one summary.
func canonical(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// summarizer walks one function body accumulating facts.
type summarizer struct {
	pkg   *Package
	facts *Facts
	out   *FuncFacts
	loops []ast.Stmt // enclosing for/range statements, innermost last
}

func (s *summarizer) block(b *ast.BlockStmt) {
	for _, st := range b.List {
		s.stmt(st)
	}
}

func (s *summarizer) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case nil:
	case *ast.BlockStmt:
		s.block(st)
	case *ast.ExprStmt:
		s.expr(st.X)
	case *ast.AssignStmt:
		s.assign(st)
	case *ast.IncDecStmt:
		s.writeTarget(st.X, "incremented")
		s.expr(st.X)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			// Cold-path carve-out: an error constructed directly in a
			// return statement (return fmt.Errorf(...)) is the miss/
			// policy-violation arm that steady-state hot paths never
			// take; the dynamic AllocsPerRun gates confirm it. See
			// DESIGN.md §15 for the soundness trade.
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && isErrorExpr(s.pkg.Info, call) {
				continue
			}
			s.expr(r)
		}
	case *ast.IfStmt:
		s.stmt(st.Init)
		s.expr(st.Cond)
		s.block(st.Body)
		s.stmt(st.Else)
	case *ast.ForStmt:
		s.stmt(st.Init)
		if st.Cond != nil {
			s.expr(st.Cond)
		}
		s.stmt(st.Post)
		s.loops = append(s.loops, st)
		s.block(st.Body)
		s.loops = s.loops[:len(s.loops)-1]
	case *ast.RangeStmt:
		s.expr(st.X)
		if st.Tok == token.ASSIGN {
			if st.Key != nil {
				s.writeTarget(st.Key, "assigned")
			}
			if st.Value != nil {
				s.writeTarget(st.Value, "assigned")
			}
		}
		s.loops = append(s.loops, st)
		s.block(st.Body)
		s.loops = s.loops[:len(s.loops)-1]
	case *ast.SwitchStmt:
		s.stmt(st.Init)
		if st.Tag != nil {
			s.expr(st.Tag)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				s.expr(e)
			}
			for _, b := range cc.Body {
				s.stmt(b)
			}
		}
	case *ast.TypeSwitchStmt:
		s.stmt(st.Init)
		s.stmt(st.Assign)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, b := range cc.Body {
				s.stmt(b)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			s.stmt(cc.Comm)
			for _, b := range cc.Body {
				s.stmt(b)
			}
		}
	case *ast.GoStmt:
		s.alloc(st.Pos(), AllocGoStmt, "")
		s.call(st.Call)
	case *ast.DeferStmt:
		s.call(st.Call)
	case *ast.SendStmt:
		s.expr(st.Chan)
		s.expr(st.Value)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		// Conservatively walk anything unanticipated.
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.expr(e)
				return false
			}
			return true
		})
	}
}

func (s *summarizer) assign(st *ast.AssignStmt) {
	for _, lhs := range st.Lhs {
		if st.Tok != token.DEFINE {
			s.writeTarget(lhs, "assigned")
		}
		// Index expressions etc. on the LHS still evaluate.
		if _, ok := lhs.(*ast.Ident); !ok {
			s.expr(lhs)
		}
	}
	for _, rhs := range st.Rhs {
		s.expr(rhs)
	}
}

// writeTarget records a write whose target's root identifier resolves
// to a package-level variable.
func (s *summarizer) writeTarget(e ast.Expr, how string) {
	root := rootIdent(e)
	if root == nil {
		return
	}
	v, ok := s.pkg.Info.Uses[root].(*types.Var)
	if !ok || !isPackageLevel(v) {
		return
	}
	s.out.GlobalWrites = append(s.out.GlobalWrites, GlobalWrite{
		Pos: e.Pos(), Var: v, Desc: how,
	})
}

// rootIdent returns the base identifier of a selector/index/star
// chain (a.b[i].c → a), or nil when the base is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isPackageLevel(v *types.Var) bool {
	if v.IsField() || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

func (s *summarizer) alloc(pos token.Pos, kind AllocKind, detail string) {
	s.out.Allocs = append(s.out.Allocs, AllocSite{Pos: pos, Kind: kind, Detail: detail})
}

func (s *summarizer) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		s.call(e)
	case *ast.FuncLit:
		s.funcLit(e)
	case *ast.CompositeLit:
		if tv, ok := s.pkg.Info.Types[e]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				s.alloc(e.Pos(), AllocSliceLit, "")
			case *types.Map:
				s.alloc(e.Pos(), AllocMapLit, "")
			}
		}
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				s.expr(kv.Value)
				continue
			}
			s.expr(el)
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			if tv, ok := s.pkg.Info.Types[e]; ok && tv.Value == nil && isStringType(tv.Type) {
				s.alloc(e.Pos(), AllocConcat, "")
			}
		}
		s.expr(e.X)
		s.expr(e.Y)
	case *ast.UnaryExpr:
		// &T{...} is the canonical Go heap allocation. Escape analysis
		// may keep a non-escaping one on the stack, but a prover cannot
		// assume the optimizer; sites proven stack-allocated carry an
		// //dcslint:allow noalloc with the dynamic evidence.
		if e.Op == token.AND {
			if _, isLit := ast.Unparen(e.X).(*ast.CompositeLit); isLit {
				s.alloc(e.Pos(), AllocNew, "address of composite literal")
			}
		}
		s.expr(e.X)
	case *ast.StarExpr:
		s.expr(e.X)
	case *ast.ParenExpr:
		s.expr(e.X)
	case *ast.SelectorExpr:
		s.selector(e)
	case *ast.IndexExpr:
		s.expr(e.X)
		s.expr(e.Index)
	case *ast.IndexListExpr:
		s.expr(e.X)
	case *ast.SliceExpr:
		s.expr(e.X)
		s.expr(e.Low)
		s.expr(e.High)
		s.expr(e.Max)
	case *ast.TypeAssertExpr:
		s.expr(e.X)
	case *ast.KeyValueExpr:
		s.expr(e.Value)
	case *ast.Ident, *ast.BasicLit, *ast.ArrayType, *ast.MapType,
		*ast.ChanType, *ast.FuncType, *ast.StructType, *ast.InterfaceType:
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			if sub, ok := n.(ast.Expr); ok && sub != e {
				s.expr(sub)
				return false
			}
			return true
		})
	}
}

// selector handles a selector used as a value: a method value binds
// its receiver (one allocation per evaluation).
func (s *summarizer) selector(e *ast.SelectorExpr) {
	if sel, ok := s.pkg.Info.Selections[e]; ok && sel.Kind() == types.MethodVal {
		s.alloc(e.Pos(), AllocMethodValue, sel.Obj().Name())
	}
	s.expr(e.X)
}

// funcLit records the literal as a capturing-closure allocation when
// it captures outer variables (non-capturing literals are static) and
// flattens its body into the enclosing summary.
func (s *summarizer) funcLit(lit *ast.FuncLit) {
	if caps := capturedVars(s.pkg.Info, lit); len(caps) > 0 {
		s.alloc(lit.Pos(), AllocClosure, "captures "+strings.Join(caps, ", "))
	}
	s.block(lit.Body)
}

// capturedVars lists the names of outer variables a literal captures.
func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	objs := freeVarObjs(info, lit)
	names := make([]string, len(objs))
	for i, v := range objs {
		names[i] = v.Name()
	}
	return names
}

// freeVarObjs returns the outer (non-field, non-package-level)
// variables a literal captures, in first-use order.
func freeVarObjs(info *types.Info, lit *ast.FuncLit) []*types.Var {
	var objs []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || isPackageLevel(v) || seen[v] {
			return true
		}
		// Declared outside the literal?
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			seen[v] = true
			objs = append(objs, v)
		}
		return true
	})
	return objs
}

// call dissects one call expression.
func (s *summarizer) call(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := s.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				s.alloc(call.Pos(), AllocMake, "")
			case "new":
				s.alloc(call.Pos(), AllocNew, "")
			case "append":
				s.alloc(call.Pos(), AllocAppend, "")
			case "panic":
				// Crash path: the allocation cost of dying is irrelevant,
				// so panic argument subtrees are exempt.
				return
			}
			for _, a := range call.Args {
				s.expr(a)
			}
			return
		}
	}

	// Type conversions.
	if tv, ok := s.pkg.Info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			if at, ok := s.pkg.Info.Types[call.Args[0]]; ok && at.Value == nil &&
				isStringByteConv(tv.Type, at.Type) {
				s.alloc(call.Pos(), AllocString, "")
			}
			s.expr(call.Args[0])
		}
		return
	}

	// Resolve the callee.
	fn := calleeFunc(s.pkg.Info, call)
	switch {
	case fn == nil:
		if lit, ok := fun.(*ast.FuncLit); ok {
			// Immediately-invoked literal: its body is already flattened.
			s.funcLit(lit)
		} else {
			s.out.Dynamic = append(s.out.Dynamic, CallSite{
				Pos: call.Pos(), Desc: "call through a func value",
			})
			s.expr(fun)
		}
	case isInterfaceMethod(fn):
		s.out.Dynamic = append(s.out.Dynamic, CallSite{
			Pos: call.Pos(), Desc: "interface method call " + fn.Name(),
		})
		// Walk only the receiver: the selector itself is the call, not a
		// bound method value.
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			s.expr(sel.X)
		}
	default:
		s.out.Calls = append(s.out.Calls, CallSite{Pos: call.Pos(), Callee: canonical(fn)})
		// A pointer-receiver method invoked on a package-level variable
		// may mutate it (atomic knobs are the canonical case).
		s.methodOnGlobal(call, fn)
		// Walk the receiver expression of method calls for nested work.
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			s.expr(sel.X)
		}
	}

	// Boxing: concrete values passed to interface parameters.
	s.boxedArgs(call)

	// Kernel callback registrations.
	s.callback(call, fn)

	for _, a := range call.Args {
		s.expr(a)
	}
}

func (s *summarizer) methodOnGlobal(call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
		return
	}
	// sync/atomic Load* takes a pointer receiver but only reads; the
	// default-knob pattern (fusionOff.Load() on the kernel fast path)
	// must not count as a cross-domain write.
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && strings.HasPrefix(fn.Name(), "Load") {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	root := rootIdent(sel.X)
	if root == nil {
		return
	}
	if v, ok := s.pkg.Info.Uses[root].(*types.Var); ok && isPackageLevel(v) {
		s.out.GlobalWrites = append(s.out.GlobalWrites, GlobalWrite{
			Pos: call.Pos(), Var: v,
			Desc: "mutated through pointer method " + fn.Name(),
		})
	}
}

// boxedArgs flags concrete, non-constant values passed to interface
// parameters — each boxing may allocate. Constant arguments (string
// literals to fmt, etc.) still box, but the flagged fmt/external call
// already covers those sites; flagging every constant would bury the
// signal.
func (s *summarizer) boxedArgs(call *ast.CallExpr) {
	tv, ok := s.pkg.Info.Types[ast.Unparen(call.Fun)]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			st, ok := sig.Params().At(np - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
			if call.Ellipsis.IsValid() {
				pt = sig.Params().At(np - 1).Type()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := s.pkg.Info.Types[arg]
		if !ok || at.Value != nil || at.IsNil() || at.Type == nil {
			continue
		}
		if types.IsInterface(at.Type) {
			continue
		}
		if _, isPtr := at.Type.Underlying().(*types.Pointer); isPtr {
			// Boxing a pointer stores it directly in the interface word
			// (no copy); the call that consumes it is flagged separately
			// if it matters, so skip to keep the signal high.
			continue
		}
		s.alloc(arg.Pos(), AllocBox, types.TypeString(at.Type, types.RelativeTo(s.pkg.Types)))
	}
}

// callback records kernel callback registrations (see Callback).
func (s *summarizer) callback(call *ast.CallExpr, fn *types.Func) {
	if fn == nil || fn.Pkg() == nil {
		return
	}
	var kind CallbackKind
	argIdx := -1
	switch {
	case fn.Pkg().Path() == SimKernelPath && recvTypeName(fn) == "Env" && fn.Name() == "Spawn":
		kind, argIdx = CallbackSpawn, 1
	case fn.Pkg().Path() == SimKernelPath && recvTypeName(fn) == "Env" && fn.Name() == "SpawnHandler":
		kind, argIdx = CallbackHandler, 1
	case fn.Pkg().Path() == SimKernelPath && recvTypeName(fn) == "Env" && fn.Name() == "Schedule":
		kind, argIdx = CallbackSchedule, 1
	case fn.Pkg().Path() == SimKernelPath && recvTypeName(fn) == "Env" && fn.Name() == "Chain":
		kind, argIdx = CallbackChain, 0
	case fn.Pkg().Path() == ModulePath+"/internal/mem" && recvTypeName(fn) == "Region" && fn.Name() == "SetWriteHook":
		kind, argIdx = CallbackHook, 0
	case fn.Pkg().Path() == ModulePath+"/internal/pcie" && recvTypeName(fn) == "Fabric" && fn.Name() == "OnMSI":
		kind, argIdx = CallbackMSI, 1
	case fn.Pkg().Path() == ShardKernelPath && recvTypeName(fn) == "Kernel" && fn.Name() == "AddNode":
		kind, argIdx = CallbackSink, 2
	default:
		return
	}
	if argIdx >= len(call.Args) {
		return
	}
	cb := Callback{Pos: call.Pos(), Kind: kind, ArgExpr: call.Args[argIdx]}
	switch arg := ast.Unparen(call.Args[argIdx]).(type) {
	case *ast.FuncLit:
		cb.Lit = arg
	case *ast.Ident:
		if f, ok := s.pkg.Info.Uses[arg].(*types.Func); ok {
			cb.Target = canonical(f)
		}
	case *ast.SelectorExpr:
		if sel, ok := s.pkg.Info.Selections[arg]; ok && sel.Kind() == types.MethodVal {
			if f, ok := sel.Obj().(*types.Func); ok {
				cb.Target = canonical(f)
			}
		} else if f, ok := s.pkg.Info.Uses[arg.Sel].(*types.Func); ok {
			cb.Target = canonical(f)
		}
	}
	if kind == CallbackSink {
		cb.DomainArg = call.Args[1]
		if len(s.loops) > 0 {
			cb.Loop = s.loops[len(s.loops)-1]
		}
	}
	s.out.Callbacks = append(s.out.Callbacks, cb)
}

// recvTypeName returns the name of fn's receiver type ("" for
// package-level functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// isErrorExpr reports whether e's static type implements error.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Implements(tv.Type, errorIface) ||
		types.Implements(types.NewPointer(tv.Type), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringByteConv reports whether a conversion between to and from
// crosses the string/[]byte (or []rune) boundary, which copies.
func isStringByteConv(to, from types.Type) bool {
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32
}
