// Package lint is dcslint: a static-analysis suite that enforces the
// determinism invariants the whole reproduction rests on. Golden
// figures (Fig 11a/11b/12), fault-recovery fingerprints, and the
// parallel runner's byte-identical-at-any-worker-count guarantee all
// assume model code never consults wall-clock time, unseeded
// randomness, goroutines of its own, or Go map iteration order.
// dcslint turns those conventions into checked properties.
//
// The analyzer API deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) so analyzers read like standard
// go/analysis code and could be ported to the real framework verbatim.
// The repo builds with zero third-party dependencies, so the driver
// (load.go) and the analysistest-style harness (analysistest.go) are
// small stdlib-only reimplementations of the corresponding x/tools
// machinery.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one dcslint check, in the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dcslint:allow directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description: first line is a summary,
	// the rest explains the invariant being enforced.
	Doc string

	// Run applies the analyzer to one package and reports
	// diagnostics via pass.Report.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic. Filled in by the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string // analyzer name; filled by the driver if empty
	Message  string

	// Chain is the interprocedural call chain that makes the position
	// relevant (root first); only module analyzers set it.
	Chain []ChainLink
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ModuleAnalyzer is a whole-module check: unlike Analyzer, whose Run
// sees one package at a time, a module analyzer runs once over every
// loaded target package plus the interprocedural facts layer
// (per-function summaries + call graph). noalloc and shardsafe are
// module analyzers — their invariants ("transitively allocation-free",
// "no state mutably shared across shard domains") only exist at
// whole-module scope.
type ModuleAnalyzer struct {
	Name string
	Doc  string
	Run  func(*ModulePass) error
}

// ModulePass carries one module analyzer's view of the whole module.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Fset     *token.FileSet
	Facts    *Facts

	// Report records one diagnostic. Filled in by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos with a call chain.
func (p *ModulePass) Reportf(pos token.Pos, chain []ChainLink, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Chain: chain, Message: fmt.Sprintf(format, args...)})
}

// calleeFunc resolves the called function of call, seeing through
// parentheses and both ident (dot-import / package-local) and
// selector (pkg.Fn, recv.Method) callees. Returns nil for calls of
// function-typed values, builtins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function
// path.name (methods never match).
func isPkgFunc(fn *types.Func, path, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return false
	}
	return fn.Pkg().Path() == path && fn.Name() == name
}

// isSimType reports whether t (or the named type it points to) is the
// named type `name` declared in the simulation kernel package.
func isSimType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == SimKernelPath && obj.Name() == name
}

// fromSimKernel reports whether obj is declared in the simulation
// kernel package.
func fromSimKernel(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == SimKernelPath
}
