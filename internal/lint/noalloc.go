package lint

import (
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc proves hot-path roots transitively allocation-free.
//
// A function marked //dcslint:hotpath is a zero-allocation promise —
// the same promise BENCH_dataplane.json makes dynamically with
// allocs_per_op == 0 and the AllocsPerRun tests make per-leaf. The
// analyzer walks the static call graph from every root and flags each
// reachable construct that can allocate, with the full call chain in
// the diagnostic. Sites the summary cannot see through — interface
// method calls, calls of func values, external functions outside the
// known-clean table — are flagged as unprovable rather than silently
// trusted; //dcslint:allow noalloc <reason> documents why such a site
// is safe (a non-escaping closure, an amortized append, a cold path).
//
// Two cold-path shapes are exempt by construction (see DESIGN.md §15):
// panic argument subtrees (the cost of dying is irrelevant) and calls
// whose error result is returned directly (`return fmt.Errorf(...)` —
// the miss arm the steady-state benchmarks never take).
var NoAlloc = &ModuleAnalyzer{
	Name: "noalloc",
	Doc: "prove //dcslint:hotpath functions transitively allocation-free\n\n" +
		"Walks the module call graph from every hotpath root and flags " +
		"reachable allocation sites (make, new, append growth, closure " +
		"and method-value creation, interface boxing, string conversion " +
		"or concatenation, go statements) and unprovable calls " +
		"(interface methods, func values, unknown external functions), " +
		"each with its call chain. Suppress a proven-safe site with " +
		"//dcslint:allow noalloc <reason>.",
	Run: runNoAlloc,
}

func runNoAlloc(pass *ModulePass) error {
	facts := pass.Facts
	for _, pos := range facts.BadHotpaths {
		pass.Report(Diagnostic{
			Pos:      pos,
			Analyzer: "dcslint",
			Message:  "dangling //dcslint:hotpath: the directive must be part of a function declaration's doc comment",
		})
	}

	// Each offending site is reported once, with the chain from the
	// first (source-order) root that reaches it — later roots reaching
	// the same site add nothing a fix would need.
	reported := map[token.Pos]bool{}
	for _, root := range facts.Roots {
		r := facts.newReach()
		r.addRoot(root)
		r.grow(nil)
		for _, ff := range r.order {
			for _, a := range ff.Allocs {
				if reported[a.Pos] {
					continue
				}
				reported[a.Pos] = true
				desc := a.Kind.String()
				if a.Detail != "" {
					desc += " (" + a.Detail + ")"
				}
				chain := r.chain(ff)
				pass.Reportf(a.Pos, chain, "allocation on hot path %s: %s [%s]",
					root.Name(), desc, chainString(chain))
			}
			for _, d := range ff.Dynamic {
				if reported[d.Pos] {
					continue
				}
				reported[d.Pos] = true
				chain := r.chain(ff)
				pass.Reportf(d.Pos, chain, "cannot prove hot path %s allocation-free: %s [%s]",
					root.Name(), d.Desc, chainString(chain))
			}
			for _, cs := range ff.Calls {
				if facts.Lookup(cs.Callee) != nil || knownCleanCall(cs.Callee) {
					continue
				}
				if reported[cs.Pos] {
					continue
				}
				reported[cs.Pos] = true
				chain := r.chain(ff)
				pass.Reportf(cs.Pos, chain, "hot path %s calls %s: external function not provably allocation-free [%s]",
					root.Name(), FuncName(cs.Callee), chainString(chain))
			}
		}
	}
	return nil
}

// knownCleanCall is the allowlist of external (non-module) functions
// known never to allocate. Kept deliberately small: a wrong entry
// here silently voids the proof, so only leaf packages with trivially
// allocation-free implementations qualify.
func knownCleanCall(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "sync/atomic", "math", "math/bits":
		return true
	case "encoding/binary":
		// The fixed-width ByteOrder accessors are pure loads/stores;
		// the reflective Read/Write and the varint Append* family
		// allocate or may grow.
		return name != "Read" && name != "Write" && !strings.HasPrefix(name, "Append")
	case "sort":
		// sort.Search calls a caller-supplied closure; whether THAT
		// allocates is judged at the closure's own creation site.
		return name == "Search"
	case "errors":
		return name == "Is" || name == "As" || name == "Unwrap"
	}
	return false
}
