package lint

// Call-graph reachability over the facts layer. Edges are the
// statically resolved calls in each summary; dynamic calls (interface
// methods, func values) do not extend reachability — the analyzers
// that walk the graph surface those sites as "cannot prove"
// diagnostics instead, which keeps the propagation sound without a
// whole-program points-to analysis (see DESIGN.md §15).

import (
	"go/token"
	"path/filepath"
	"strings"
)

// ChainLink is one hop of a call chain, pre-rendered for diagnostics
// and JSON output.
type ChainLink struct {
	Func string // e.g. "(*pcie.Fabric).DMA" or "func literal"
	File string // repo-relative when possible
	Line int
}

func (l ChainLink) String() string {
	if l.File == "" {
		return l.Func
	}
	return l.Func
}

// reach is a breadth-first reachability set rooted at one or more
// summaries, with parent edges for shortest-chain reconstruction.
type reach struct {
	facts  *Facts
	order  []*FuncFacts            // BFS visit order (roots first)
	parent map[*FuncFacts]*FuncFacts
	site   map[*FuncFacts]token.Pos // call site in parent that first reached it
	seen   map[*FuncFacts]bool
}

// newReach starts an empty reachability set.
func (f *Facts) newReach() *reach {
	return &reach{
		facts:  f,
		parent: map[*FuncFacts]*FuncFacts{},
		site:   map[*FuncFacts]token.Pos{},
		seen:   map[*FuncFacts]bool{},
	}
}

// addRoot seeds the BFS with a root summary.
func (r *reach) addRoot(root *FuncFacts) {
	if root == nil || r.seen[root] {
		return
	}
	r.seen[root] = true
	r.order = append(r.order, root)
}

// grow runs the BFS to a fixed point over static call edges. visit,
// if non-nil, is invoked on every newly reached summary and may seed
// further roots (e.g. callback registrations) via addRoot.
func (r *reach) grow(visit func(*FuncFacts)) {
	for i := 0; i < len(r.order); i++ {
		ff := r.order[i]
		if visit != nil {
			visit(ff)
		}
		for _, cs := range ff.Calls {
			callee := r.facts.Lookup(cs.Callee)
			if callee == nil || r.seen[callee] {
				continue
			}
			r.seen[callee] = true
			r.parent[callee] = ff
			r.site[callee] = cs.Pos
			r.order = append(r.order, callee)
		}
	}
}

// chain reconstructs the root → … → ff call chain.
func (r *reach) chain(ff *FuncFacts) []ChainLink {
	var rev []*FuncFacts
	for cur := ff; cur != nil; cur = r.parent[cur] {
		rev = append(rev, cur)
	}
	links := make([]ChainLink, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		cur := rev[i]
		link := ChainLink{Func: cur.Name()}
		var pos token.Pos
		if cur.Decl != nil {
			pos = cur.Decl.Pos()
		} else if cur.Lit != nil {
			pos = cur.Lit.Pos()
		}
		if pos.IsValid() && r.facts.Fset != nil {
			p := r.facts.Fset.Position(pos)
			link.File = relFile(p.Filename)
			link.Line = p.Line
		}
		links = append(links, link)
	}
	return links
}

// chainString renders a chain as "A → B → C" for one-line messages.
func chainString(links []ChainLink) string {
	parts := make([]string, len(links))
	for i, l := range links {
		parts[i] = l.Func
	}
	return strings.Join(parts, " → ")
}

// relFile trims an absolute filename down to something stable for
// diagnostics: the path below the deepest "internal", "cmd", or
// "testdata" segment when present, else the base name.
func relFile(name string) string {
	clean := filepath.ToSlash(name)
	for _, marker := range []string{"/internal/", "/cmd/", "/examples/", "/testdata/"} {
		if i := strings.LastIndex(clean, marker); i >= 0 {
			return clean[i+1:]
		}
	}
	return filepath.Base(clean)
}
