package lint

import "go/token"

// NoBlockHandler proves run-to-completion handler procs never block.
//
// A handler proc (sim.Env.SpawnHandler, DESIGN.md §16) runs inline on
// the dispatcher's goroutine: if its body reaches any park-capable
// API — Proc.Sleep, Proc.Yield, Signal.Wait, Cond.Wait, Queue.Get,
// Resource.Acquire, BandwidthServer.Transfer, or anything that
// transitively calls the kernel's park — the kernel panics at runtime
// mid-simulation. This analyzer makes that contract a compile-time
// property: it computes the set of park-capable functions (everything
// from which (*sim.Proc).park is reachable over static call edges),
// then walks the call graph from every registered handler body and
// flags each edge that crosses into the park-capable set, with the
// root → sink chain in the diagnostic. Dynamic calls (interface
// methods, func values) cannot be proven park-free and are flagged
// conservatively; //dcslint:allow noblockhandler <reason> documents
// why such a site is safe.
var NoBlockHandler = &ModuleAnalyzer{
	Name: "noblockhandler",
	Doc: "prove handler-proc bodies never reach a park-capable API\n\n" +
		"Walks the module call graph from every sim.Env.SpawnHandler " +
		"registration and flags calls into park-capable kernel APIs " +
		"(Sleep, Yield, Wait, Get, Acquire, Transfer — anything that " +
		"reaches Proc.park) and unprovable dynamic calls, each with its " +
		"root → sink chain. Handler procs run inline on the dispatcher; " +
		"waiting must be expressed by re-arming on a Signal/Cond edge " +
		"or the non-blocking H variants. Suppress a proven-safe site " +
		"with //dcslint:allow noblockhandler <reason>.",
	Run: runNoBlockHandler,
}

func runNoBlockHandler(pass *ModulePass) error {
	facts := pass.Facts

	parkCapable := parkCapableSet(facts)
	if parkCapable == nil {
		return nil // kernel not among the loaded packages: nothing to prove
	}

	// Each offending site is reported once; each root body is walked
	// once no matter how many spawn sites register it.
	reported := map[token.Pos]bool{}
	checked := map[*FuncFacts]bool{}
	for _, ff := range facts.All {
		for _, cb := range ff.Callbacks {
			if cb.Kind != CallbackHandler {
				continue
			}
			var root *FuncFacts
			switch {
			case cb.Target != nil:
				root = facts.Lookup(cb.Target)
			case cb.Lit != nil:
				root = facts.litFacts(ff.Pkg, cb.Lit)
			}
			if root == nil {
				if !reported[cb.Pos] {
					reported[cb.Pos] = true
					chain := []ChainLink{{Func: ff.Name()}}
					pass.Reportf(cb.Pos, chain,
						"handler proc registered with an opaque func value dcslint cannot check for blocking calls [%s]", ff.Name())
				}
				continue
			}
			if checked[root] {
				continue
			}
			checked[root] = true
			checkHandlerRoot(pass, facts, root, parkCapable, reported)
		}
	}
	return nil
}

// descendToKernelSink follows park-capable call edges down from the
// boundary callee until it reaches a kernel-package function — the
// blocking API the handler would actually hit (Signal.Wait, Queue.Get,
// Resource.Acquire, ...) rather than a module-local wrapper. Each hop
// is appended to chain; the final sink is returned.
func descendToKernelSink(facts *Facts, parkCapable map[*FuncFacts]bool, callee *FuncFacts, chain *[]ChainLink) *FuncFacts {
	sink := callee
	hopped := map[*FuncFacts]bool{sink: true}
	for sink.Fn == nil || sink.Fn.Pkg() == nil || sink.Fn.Pkg().Path() != SimKernelPath {
		var next *FuncFacts
		for _, cs := range sink.Calls {
			if c := facts.Lookup(cs.Callee); c != nil && parkCapable[c] && !hopped[c] {
				next = c
				break
			}
		}
		if next == nil {
			break
		}
		hopped[next] = true
		sink = next
		*chain = append(*chain, ChainLink{Func: sink.Name()})
	}
	return sink
}

// parkCapableSet computes the transitive closure of "calls
// (*sim.Proc).park" over static call edges — the functions a handler
// body must never reach. Returns nil when the kernel package (and so
// park itself) is not loaded.
func parkCapableSet(facts *Facts) map[*FuncFacts]bool {
	capable := map[*FuncFacts]bool{}
	for _, ff := range facts.All {
		if ff.Fn != nil && ff.Fn.Pkg() != nil && ff.Fn.Pkg().Path() == SimKernelPath &&
			recvTypeName(ff.Fn) == "Proc" && ff.Fn.Name() == "park" {
			capable[ff] = true
		}
	}
	if len(capable) == 0 {
		return nil
	}
	// Reverse-reachability by forward iteration to a fixed point: the
	// module graph is small and acyclic enough that this converges in
	// a handful of passes.
	for changed := true; changed; {
		changed = false
		for _, ff := range facts.All {
			if capable[ff] {
				continue
			}
			for _, cs := range ff.Calls {
				if callee := facts.Lookup(cs.Callee); callee != nil && capable[callee] {
					capable[ff] = true
					changed = true
					break
				}
			}
		}
	}
	return capable
}

// checkHandlerRoot walks the call graph from one handler body. The
// BFS stops at the park-capable boundary: the first call edge into the
// set is the diagnostic, extended down the park-capable chain to the
// kernel API actually parking (so it names Queue.Get, not a
// module-local wrapper and not the kernel-internal park). External
// (non-module) calls are safe by construction — only kernel code can
// park.
func checkHandlerRoot(pass *ModulePass, facts *Facts, root *FuncFacts, parkCapable map[*FuncFacts]bool, reported map[token.Pos]bool) {
	r := facts.newReach()
	r.addRoot(root)
	for i := 0; i < len(r.order); i++ {
		ff := r.order[i]
		for _, cs := range ff.Calls {
			callee := facts.Lookup(cs.Callee)
			if callee == nil {
				continue
			}
			if parkCapable[callee] {
				if !reported[cs.Pos] {
					reported[cs.Pos] = true
					chain := append(r.chain(ff), ChainLink{Func: callee.Name()})
					sink := descendToKernelSink(facts, parkCapable, callee, &chain)
					pass.Reportf(cs.Pos, chain,
						"handler proc %s reaches park-capable %s: handler bodies run inline on the dispatcher and must never block — re-arm on a Signal/Cond edge or use the non-blocking H variants [%s]",
						root.Name(), sink.Name(), chainString(chain))
				}
				continue
			}
			if r.seen[callee] {
				continue
			}
			r.seen[callee] = true
			r.parent[callee] = ff
			r.site[callee] = cs.Pos
			r.order = append(r.order, callee)
		}
		for _, d := range ff.Dynamic {
			if reported[d.Pos] {
				continue
			}
			reported[d.Pos] = true
			chain := r.chain(ff)
			pass.Reportf(d.Pos, chain,
				"cannot prove handler proc %s never blocks: %s [%s]",
				root.Name(), d.Desc, chainString(chain))
		}
	}
}
