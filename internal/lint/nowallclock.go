package lint

import (
	"go/ast"
	"go/types"
)

// NoWallClock flags wall-clock reads and global/unseeded randomness
// in simulation packages. Model code runs on the simulated timeline:
// time comes from sim.Env.Now / sim.Proc.Now, delays from Proc.Sleep
// and Env.Schedule, and randomness from an explicitly seeded
// rand.New(rand.NewSource(seed)) (or the per-site PRNG streams in
// internal/fault). Anything else makes two runs of the same
// experiment diverge, which silently invalidates golden figures,
// fault fingerprints, and the parallel runner's byte-identical
// guarantee.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc: "forbid wall-clock time and global math/rand in simulation packages\n\n" +
		"Simulation code must derive time from the DES kernel (sim.Env.Now, " +
		"Proc.Sleep) and randomness from explicitly seeded generators, or " +
		"replay is no longer bit-identical.",
	Run: runNoWallClock,
}

// wallClockFuncs are the package time functions that read or depend
// on the real clock. Pure conversions and constructors over explicit
// values (time.Duration arithmetic, time.Unix, time.Date) are fine.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// seededRandCtors are the math/rand{,/v2} package-level functions that
// construct explicitly seeded generators rather than consulting the
// process-global (randomly seeded) one.
var seededRandCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runNoWallClock(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock; simulation code must use the "+
							"DES kernel clock (sim.Env.Now / sim.Proc.Sleep) so replay "+
							"stays bit-identical", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandCtors[fn.Name()] {
					pass.Reportf(call.Pos(),
						"%s.%s uses the process-global PRNG; simulation code must draw "+
							"from an explicitly seeded generator (rand.New(rand.NewSource(seed)) "+
							"or a fault.Injector stream) so replay stays bit-identical",
						fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
