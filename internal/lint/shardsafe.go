package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ShardSafe proves the state-isolation invariant the conservative-
// parallel shard kernel (internal/sim/shard) depends on: inside a
// lookahead window, domains run concurrently with no synchronization,
// which is only sound if no state reachable from one domain's
// sim.Env is mutably reachable from another. Two mechanisms can
// break that silently:
//
//  1. Package-level variables written from simulated-timeline code
//     (proc bodies, scheduled callbacks, write hooks, MSI handlers,
//     delivery sinks). Every domain shares the process address space,
//     so such a write is a data race the -race matrix can only sample.
//
//  2. Cross-domain pointer captures at Rack wiring time: the sink
//     passed to shard.Kernel.AddNode delivers frames into a domain,
//     so a sink that closes over (or binds, for method values) state
//     declared outside the per-node wiring loop aliases one object
//     into every domain.
//
// The analyzer seeds reachability at every kernel-callback
// registration (sim.Env Spawn/Schedule/Chain, mem write hooks, pcie
// MSI handlers, shard sinks), walks the static call graph, and flags
// both mechanisms. Simulation-model packages and out-of-module code
// (testdata models) are checked; host-side packages (bench, cmd) are
// exempt — their procs run single-domain experiments. Suppress a
// deliberate site with //dcslint:allow shardsafe <reason>.
//
// Soundness caveats (DESIGN.md §15): dynamic calls do not extend
// reachability, func values stored in fields and invoked later are
// not traced to their definitions, and AddNode calls outside a wiring
// loop are not capture-checked — the flattening of function literals
// into their enclosing summaries covers the common registration
// idioms, and the parallel-equivalence -race matrix remains the
// backstop for the rest.
var ShardSafe = &ModuleAnalyzer{
	Name: "shardsafe",
	Doc: "prove shard domains share no mutable state\n\n" +
		"Flags package-level variables written from code reachable from " +
		"kernel callbacks (Spawn/Schedule/Chain/write hooks/MSI/sinks) " +
		"and shard.Kernel.AddNode sinks that capture state declared " +
		"outside the per-node wiring loop. Both are cross-domain races " +
		"under the conservative-parallel kernel. Suppress a proven-safe " +
		"site with //dcslint:allow shardsafe <reason>.",
	Run: runShardSafe,
}

func runShardSafe(pass *ModulePass) error {
	facts := pass.Facts

	// Check 1: global writes reachable from simulated-timeline code.
	r := facts.newReach()
	seedCallbacks := func(ff *FuncFacts) {
		for _, cb := range ff.Callbacks {
			if cb.Target != nil {
				r.addRoot(facts.Lookup(cb.Target))
			} else if cb.Lit != nil {
				r.addRoot(facts.litFacts(ff.Pkg, cb.Lit))
			}
		}
	}
	for _, ff := range facts.All {
		seedCallbacks(ff)
	}
	r.grow(seedCallbacks) // code reached from a proc can register more callbacks

	for _, ff := range r.order {
		if !modelCode(ff.Pkg.Path) {
			continue
		}
		for _, gw := range ff.GlobalWrites {
			chain := r.chain(ff)
			pass.Reportf(gw.Pos, chain,
				"package-level variable %s %s from simulated-timeline code: shard domains share it without synchronization [%s]",
				varName(gw.Var), gw.Desc, chainString(chain))
		}
	}

	// Check 2: AddNode sink captures at wiring time.
	for _, ff := range facts.All {
		for _, cb := range ff.Callbacks {
			if cb.Kind != CallbackSink || cb.Loop == nil {
				continue
			}
			checkSinkCaptures(pass, ff, cb)
		}
	}
	return nil
}

// checkSinkCaptures verifies that a sink registered inside a per-node
// wiring loop only references state created in that loop iteration.
func checkSinkCaptures(pass *ModulePass, ff *FuncFacts, cb Callback) {
	chain := []ChainLink{{Func: ff.Name()}}
	switch {
	case cb.Lit != nil:
		for _, v := range freeVarObjs(ff.Pkg.Info, cb.Lit) {
			if declaredInside(v, cb.Loop) {
				continue
			}
			pass.Reportf(cb.Pos, chain,
				"shard sink captures %q declared outside the per-node wiring loop: cross-domain pointer capture [%s]",
				v.Name(), ff.Name())
		}
	case cb.Target != nil && isMethodValueExpr(ff.Pkg.Info, cb.ArgExpr):
		sel, ok := ast.Unparen(cb.ArgExpr).(*ast.SelectorExpr)
		if !ok {
			return
		}
		root := rootIdent(sel.X)
		if root == nil {
			pass.Reportf(cb.Pos, chain,
				"shard sink binds a receiver dcslint cannot trace to a per-node variable [%s]", ff.Name())
			return
		}
		v, isVar := ff.Pkg.Info.Uses[root].(*types.Var)
		if !isVar || isPackageLevel(v) || !declaredInside(v, cb.Loop) {
			pass.Reportf(cb.Pos, chain,
				"shard sink binds receiver %q declared outside the per-node wiring loop: cross-domain pointer capture [%s]",
				root.Name, ff.Name())
		}
	case cb.Target != nil:
		// A plain package-level function captures nothing: safe.
	default:
		pass.Reportf(cb.Pos, chain,
			"shard sink is an opaque func value dcslint cannot check for cross-domain captures [%s]", ff.Name())
	}
}

// modelCode reports whether pkgPath holds simulated-timeline model
// code for shardsafe purposes: the module's sim packages, or any
// out-of-module package (testdata models compile under synthetic
// import paths). Host packages are exempt — their procs drive
// single-domain experiments and own their globals.
func modelCode(pkgPath string) bool {
	if !strings.HasPrefix(pkgPath, ModulePath) {
		return true
	}
	return IsSimPackage(pkgPath)
}

func declaredInside(v *types.Var, node ast.Node) bool {
	return v.Pos() >= node.Pos() && v.Pos() <= node.End()
}

func isMethodValueExpr(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}

func varName(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}
