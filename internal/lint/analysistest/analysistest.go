// Package analysistest checks a dcslint analyzer's diagnostics
// against expectations embedded in testdata sources, mirroring
// golang.org/x/tools/go/analysis/analysistest (which the
// zero-dependency build cannot import).
//
// A `// want` comment sits on the line where a diagnostic is expected
// and carries one quoted regular expression per expected diagnostic:
//
//	time.Now() // want `time\.Now reads the wall clock`
//
// Double-quoted Go string literals work too. Every produced
// diagnostic must be matched by exactly one want pattern on its line,
// and every want pattern must match a diagnostic; anything else fails
// the test. //dcslint:allow directives are honoured exactly as in the
// real driver, so testdata can exercise the escape hatch, and
// malformed directives surface as diagnostics of the pseudo-analyzer
// "dcslint".
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dcsctrl/internal/lint"
)

// sharedLoader serves all analyzer tests: testdata packages import
// overlapping closures (time, math/rand, the sim kernel), and the
// shared type-check cache makes each CheckDir after the first cheap.
var (
	loaderOnce   sync.Once
	sharedLoader *lint.Loader
)

// Run applies analyzer a to the single package rooted at dir and
// compares diagnostics with // want expectations.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	check(t, dir, func(pkg *lint.Package) []lint.Finding {
		return lint.Apply(a, pkg)
	})
}

// RunModule applies module analyzer ma to the single package rooted
// at dir (treated as the whole module for facts purposes) and
// compares diagnostics with // want expectations. deps name real
// module packages (go list patterns) whose function bodies join the
// facts set alongside the testdata package — interprocedural
// analyzers like noblockhandler need the kernel's own bodies to
// compute park-capable reachability. Deps are loaded before the
// testdata package so both type-check against the same package
// objects; a diagnostic landing in a dep fails the test.
func RunModule(t *testing.T, ma *lint.ModuleAnalyzer, dir string, deps ...string) {
	t.Helper()
	loaderOnce.Do(func() { sharedLoader = lint.NewLoader("") })
	var extra []*lint.Package
	if len(deps) > 0 {
		var err error
		extra, err = sharedLoader.Load(deps...)
		if err != nil {
			t.Fatalf("loading deps %v: %v", deps, err)
		}
	}
	check(t, dir, func(pkg *lint.Package) []lint.Finding {
		return lint.ApplyModule(ma, append([]*lint.Package{pkg}, extra...)...)
	})
}

func check(t *testing.T, dir string, apply func(*lint.Package) []lint.Finding) {
	t.Helper()
	loaderOnce.Do(func() { sharedLoader = lint.NewLoader("") })
	pkg, err := sharedLoader.CheckDir(dir, filepath.Base(dir))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}

	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, f := range apply(pkg) {
		k := key{filepath.Base(f.Pos.Filename), f.Pos.Line}
		got[k] = append(got[k], fmt.Sprintf("[%s] %s", f.Analyzer, f.Message))
	}

	for _, w := range parseWants(t, pkg) {
		k := key{w.file, w.line}
		re, err := regexp.Compile(w.pattern)
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %q: %v", w.file, w.line, w.pattern, err)
		}
		idx := -1
		for i, m := range got[k] {
			if re.MatchString(m) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("%s:%d: no diagnostic matching %q (got %v)", w.file, w.line, w.pattern, got[k])
			continue
		}
		got[k] = append(got[k][:idx], got[k][idx+1:]...)
	}
	for k, msgs := range got {
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
		}
	}
}

type want struct {
	file    string
	line    int
	pattern string
}

var (
	wantCommentRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
	wantStringRE  = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// parseWants extracts want expectations from the package's comments.
func parseWants(t *testing.T, pkg *lint.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantCommentRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantStringRE.FindAllString(m[1], -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					var pat string
					if strings.HasPrefix(q, "`") {
						pat = strings.Trim(q, "`")
					} else {
						u, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, q, err)
						}
						pat = u
					}
					wants = append(wants, want{filepath.Base(pos.Filename), pos.Line, pat})
				}
			}
		}
	}
	return wants
}
